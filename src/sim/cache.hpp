// The block buffer cache of Section 6: LRU replacement, read-ahead,
// write-behind, and optional per-process ownership caps.
//
// The cache is pure bookkeeping — it never advances time. The simulator asks
// it to *plan* each read/write; the plan says which block runs must move
// to/from the disk and which in-flight operations the request must join.
// Completion notifications flow back through fetch_complete/flush_complete.
//
// Storage layout (hot path): blocks live in a slot pool (stable indices,
// free-list recycled) addressed through an open-addressing hash index, and
// both block lists are intrusive — prev/next slot indices inside the block
// itself. The clean list is LRU-ordered; the dirty list is kept in ascending
// (file, block) key order so flush batches coalesce into contiguous runs.
// A block is on at most one list (Clean and Dirty are disjoint states), so
// the two share the same pair of link fields. Touching a block on a hit or
// dirtying an appending write is pointer surgery with zero allocation, where
// the seed implementation paid an unordered_map node plus a std::list splice
// per touch and a std::set node per dirtied block.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sim/metrics.hpp"
#include "sim/params.hpp"
#include "util/flat_map.hpp"
#include "util/units.hpp"

namespace craysim::sim {

/// A contiguous block range of one file (unit: cache blocks).
struct BlockRun {
  std::uint32_t file = 0;
  std::int64_t first_block = 0;
  std::int64_t count = 0;

  [[nodiscard]] Bytes bytes(Bytes block_size) const { return count * block_size; }
  friend bool operator==(const BlockRun&, const BlockRun&) = default;
};

class BufferCache {
 public:
  BufferCache(const CacheParams& params, CacheMetrics& metrics);

  struct ReadPlan {
    bool space_wait = false;   ///< no allocatable space: retry after a flush
    bool bypass = false;       ///< request larger than the cache: go direct
    bool full_hit = false;     ///< served entirely from cache
    bool readahead_hit = false;  ///< some touched block arrived via prefetch
    std::vector<BlockRun> fetch_runs;        ///< fetches this request starts
    std::vector<std::uint64_t> join_ops;     ///< in-flight fetches to wait on
    std::optional<BlockRun> readahead;       ///< suggested sequential prefetch
  };

  struct WritePlan {
    bool space_wait = false;
    bool bypass = false;
    bool absorbed = false;                   ///< write-behind: returns immediately
    std::vector<BlockRun> writethrough_runs; ///< must reach disk before returning
  };

  /// Plans a read. On success, missing blocks are inserted in Fetching
  /// state; the blocks of fetch_runs[i] are tagged with operation id
  /// `first_op_id + i`, and the caller must issue run i under exactly that
  /// id so later requests can join it. No state is modified when space_wait
  /// or bypass is returned.
  [[nodiscard]] ReadPlan plan_read(std::uint32_t pid, std::uint32_t file, Bytes offset,
                                   Bytes length, std::uint64_t first_op_id);

  /// Plans a write. Under write-behind the data lands dirty in the cache
  /// (stamped with `now` for delayed-write age policies); otherwise blocks
  /// enter Flushing state and the caller must issue the write-through runs.
  [[nodiscard]] WritePlan plan_write(std::uint32_t pid, std::uint32_t file, Bytes offset,
                                     Bytes length, std::uint64_t op_id, bool write_behind,
                                     Ticks now = Ticks::zero());

  /// Attempts to start the suggested prefetch. Never waits: returns nullopt
  /// when blocks are already present/in-flight or space is unavailable.
  [[nodiscard]] std::optional<BlockRun> try_issue_readahead(std::uint32_t pid,
                                                            const BlockRun& candidate,
                                                            std::uint64_t op_id);

  /// Marks a completed demand/readahead fetch: Fetching -> Clean.
  void fetch_complete(const BlockRun& run);

  /// Marks a completed flush or write-through: Flushing -> Clean.
  void flush_complete(const BlockRun& run);

  /// Collects up to `max_blocks` dirty blocks into contiguous runs (each at
  /// most `max_run_blocks` long; <=0 means unlimited) and marks them
  /// Flushing; the caller issues the disk writes. With `min_age` > 0 only
  /// blocks dirtied at or before `now - min_age` are taken — the Sprite-style
  /// delayed-write policy of Section 2.1 (pass min_age zero to force a full
  /// flush under space pressure).
  [[nodiscard]] std::vector<BlockRun> collect_flush_batch(std::int64_t max_blocks,
                                                          std::int64_t max_run_blocks = 0,
                                                          Ticks now = Ticks::zero(),
                                                          Ticks min_age = Ticks::zero());

  /// Drops every block of `file` (close-and-delete): clean/fetched data is
  /// discarded, dirty blocks are cancelled before ever reaching the disk —
  /// the temporary-file savings delayed writes exist for. Blocks currently
  /// Fetching or Flushing are left to complete. Returns the number of dirty
  /// blocks whose writes were avoided.
  std::int64_t invalidate_file(std::uint32_t file);

  [[nodiscard]] std::int64_t dirty_block_count() const { return dirty_count_; }
  [[nodiscard]] std::int64_t clean_block_count() const { return clean_count_; }
  [[nodiscard]] bool over_watermark() const;
  [[nodiscard]] Bytes block_size() const { return params_.block_size; }
  [[nodiscard]] std::int64_t capacity_blocks() const { return capacity_blocks_; }
  [[nodiscard]] std::int64_t resident_blocks() const { return live_count_; }
  [[nodiscard]] std::int64_t owned_blocks(std::uint32_t pid) const;

 private:
  enum class State : std::uint8_t { kClean, kDirty, kFetching, kFlushing };

  static constexpr std::uint32_t kNil = 0xffffffffu;

  struct Block {
    std::uint64_t key = 0;         ///< file<<32 | block while live
    std::uint64_t op_id = 0;       ///< fetch op while Fetching
    Ticks dirty_since;             ///< when the block was last made dirty
    std::uint32_t owner = 0;
    // Intrusive list links (slot indices): the clean-LRU list while Clean,
    // the key-ordered dirty list while Dirty (the states are disjoint, so
    // one pair of links serves both) — and the slot doubles as the
    // free-list node via lru_next when dead.
    std::uint32_t lru_prev = kNil;
    std::uint32_t lru_next = kNil;
    State state = State::kClean;
    bool live = false;
    bool from_readahead = false;   ///< fetched by prefetch, not yet referenced
    bool redirtied = false;        ///< written while Flushing
  };

  static std::uint64_t key_of(std::uint32_t file, std::int64_t block) {
    return (static_cast<std::uint64_t>(file) << 32) | static_cast<std::uint64_t>(block);
  }
  static std::uint32_t file_of(std::uint64_t key) { return static_cast<std::uint32_t>(key >> 32); }
  static std::int64_t block_of(std::uint64_t key) {
    return static_cast<std::int64_t>(key & 0xffffffffull);
  }

  [[nodiscard]] std::int64_t free_blocks() const { return capacity_blocks_ - live_count_; }
  /// Can `need` new blocks be produced (free + evictable clean)?
  [[nodiscard]] bool can_allocate(std::int64_t need, std::uint32_t pid) const;
  /// Makes room for one block (evicting the LRU clean block if needed) and
  /// inserts it; returns the slot. Pre-condition: can_allocate held for the
  /// whole batch.
  std::uint32_t insert_block(std::uint64_t key, State state, std::uint32_t pid,
                             std::uint64_t op_id, bool from_readahead);
  void evict_one(std::uint32_t prefer_owner);
  /// Looks up a live block slot; kNil when absent.
  [[nodiscard]] std::uint32_t find_slot(std::uint64_t key) const;
  void touch_clean(Block& block);
  void make_dirty(Block& block, std::uint32_t pid);
  /// Appends a Clean block at the MRU end of the intrusive list.
  void lru_push_back(std::uint32_t slot);
  /// Unlinks a Clean block from the intrusive list.
  void lru_unlink(std::uint32_t slot);
  /// Inserts a Dirty block into the intrusive dirty list at its ascending
  /// key position (sequential writes append in O(1) via the tail/hint
  /// checks) and bumps dirty_count_.
  void dirty_link(std::uint32_t slot);
  /// Unlinks a Dirty block from the intrusive dirty list and drops
  /// dirty_count_.
  void dirty_unlink(std::uint32_t slot);
  /// Releases a slot back to the free list (after index erase).
  void free_slot(std::uint32_t slot);
  [[nodiscard]] std::uint32_t slot_of(const Block& block) const {
    return static_cast<std::uint32_t>(&block - pool_.data());
  }

  CacheParams params_;
  CacheMetrics* metrics_;
  std::int64_t capacity_blocks_;
  std::int64_t cap_blocks_per_process_;  ///< 0 = unlimited
  std::vector<Block> pool_;              ///< slot storage, stable indices
  std::uint32_t free_head_ = kNil;       ///< free-list through lru_next
  util::FlatMap64<std::uint32_t> index_; ///< key -> slot
  std::uint32_t lru_head_ = kNil;        ///< clean blocks, LRU at head
  std::uint32_t lru_tail_ = kNil;        ///< MRU end
  std::int64_t clean_count_ = 0;
  std::int64_t live_count_ = 0;
  // Intrusive dirty list, ascending by key so flush batches form contiguous
  // runs. dirty_hint_ remembers the last insertion point: workloads with
  // write locality (the common case) link neighbors in O(1) instead of
  // walking from an end.
  std::uint32_t dirty_head_ = kNil;
  std::uint32_t dirty_tail_ = kNil;
  std::uint32_t dirty_hint_ = kNil;
  std::int64_t dirty_count_ = 0;
  std::unordered_map<std::uint32_t, std::int64_t> owned_;
  // Per-file sequential detector for read-ahead.
  struct SeqState {
    Bytes last_end = -1;
    Bytes last_length = 0;
  };
  std::unordered_map<std::uint32_t, SeqState> sequential_;
};

}  // namespace craysim::sim
