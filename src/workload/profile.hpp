// Declarative description of a supercomputing application's I/O behaviour.
//
// Section 5 of the paper characterizes application I/O as (a) required
// (compulsory) I/O at startup/shutdown, (b) periodic checkpoints, and
// (c) per-iteration data swapping, with constant request sizes, high
// sequentiality, and bursts that repeat every cycle. AppProfile captures
// exactly those degrees of freedom; the seven traced applications are
// calibrated instances (profiles.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace craysim::workload {

/// A file the application touches.
struct FileSpec {
  std::string name;
  Bytes size = 0;  ///< logical size (data-set contribution)
};

/// A batch of same-sized requests issued back-to-back at startup or finale.
struct EdgeBurst {
  std::vector<std::uint32_t> files;  ///< 0-based indices into AppProfile::files
  bool write = false;
  Bytes request_size = 0;
  std::int64_t requests = 0;  ///< total, round-robined over `files`
};

/// A burst inside the per-iteration cycle.
struct CycleBurst {
  std::vector<std::uint32_t> files;  ///< interleaved round-robin over these
  bool write = false;
  bool async = false;
  Bytes request_size = 0;
  std::int64_t requests = 0;     ///< per occurrence, round-robined over `files`
  std::int32_t every_cycles = 1; ///< occurs on cycles where cycle % every == phase
  std::int32_t phase = 0;
  bool rewind = true;            ///< restart file cursor each occurrence (paper: same
                                 ///< sequence every cycle); false = keep streaming
};

/// Full application model.
struct AppProfile {
  std::string name;
  std::string description;
  Ticks cpu_time;                ///< total process CPU time (paper "Running time")
  std::int32_t cycles = 1;       ///< iterations of the main loop
  std::vector<FileSpec> files;
  std::vector<EdgeBurst> startup;  ///< required reads before the loop
  std::vector<EdgeBurst> finale;   ///< required writes after the loop
  std::vector<CycleBurst> cycle;   ///< bursts per iteration, in order
  /// Fraction of each cycle's CPU spent *inside* bursts (thin compute between
  /// consecutive requests); the rest is the pure-compute phase between
  /// bursts. Small values make I/O burstier (Figures 3/4).
  double burst_cpu_fraction = 0.15;
  /// CPU fraction consumed by startup+finale (split off the total).
  double edge_cpu_fraction = 0.01;
  /// Multiplicative jitter half-width on compute gaps (0.1 = +/-10%); gaps
  /// are renormalized so per-cycle CPU stays exact.
  double gap_jitter = 0.15;
  std::uint64_t seed = 0x5eed;

  /// Totals implied by the profile (used by calibration tests).
  [[nodiscard]] std::int64_t total_requests() const;
  [[nodiscard]] Bytes total_bytes() const;
  [[nodiscard]] Bytes total_read_bytes() const;
  [[nodiscard]] Bytes total_write_bytes() const;
  [[nodiscard]] Bytes data_set_size() const;

  /// Throws ConfigError when indices are out of range, counts are negative,
  /// or there is no I/O at all.
  void validate() const;
};

}  // namespace craysim::workload
