#include "workload/profile.hpp"

#include "util/error.hpp"

namespace craysim::workload {
namespace {

std::int64_t occurrences(const CycleBurst& burst, std::int32_t cycles) {
  std::int64_t n = 0;
  for (std::int32_t c = 0; c < cycles; ++c) {
    if (burst.every_cycles <= 1 || c % burst.every_cycles == burst.phase % burst.every_cycles) {
      ++n;
    }
  }
  return n;
}

}  // namespace

std::int64_t AppProfile::total_requests() const {
  std::int64_t total = 0;
  for (const auto& burst : startup) total += burst.requests;
  for (const auto& burst : finale) total += burst.requests;
  for (const auto& burst : cycle) total += burst.requests * occurrences(burst, cycles);
  return total;
}

Bytes AppProfile::total_bytes() const { return total_read_bytes() + total_write_bytes(); }

Bytes AppProfile::total_read_bytes() const {
  Bytes total = 0;
  for (const auto& burst : startup) {
    if (!burst.write) total += burst.requests * burst.request_size;
  }
  for (const auto& burst : finale) {
    if (!burst.write) total += burst.requests * burst.request_size;
  }
  for (const auto& burst : cycle) {
    if (!burst.write) total += burst.requests * burst.request_size * occurrences(burst, cycles);
  }
  return total;
}

Bytes AppProfile::total_write_bytes() const {
  Bytes total = 0;
  for (const auto& burst : startup) {
    if (burst.write) total += burst.requests * burst.request_size;
  }
  for (const auto& burst : finale) {
    if (burst.write) total += burst.requests * burst.request_size;
  }
  for (const auto& burst : cycle) {
    if (burst.write) total += burst.requests * burst.request_size * occurrences(burst, cycles);
  }
  return total;
}

Bytes AppProfile::data_set_size() const {
  Bytes total = 0;
  for (const auto& f : files) total += f.size;
  return total;
}

void AppProfile::validate() const {
  if (cpu_time <= Ticks::zero()) throw ConfigError(name + ": cpu_time must be positive");
  if (cycles < 1) throw ConfigError(name + ": cycles must be >= 1");
  if (files.empty()) throw ConfigError(name + ": needs at least one file");
  if (burst_cpu_fraction < 0.0 || burst_cpu_fraction > 1.0) {
    throw ConfigError(name + ": burst_cpu_fraction out of [0,1]");
  }
  if (edge_cpu_fraction < 0.0 || edge_cpu_fraction >= 1.0) {
    throw ConfigError(name + ": edge_cpu_fraction out of [0,1)");
  }
  if (gap_jitter < 0.0 || gap_jitter >= 1.0) {
    throw ConfigError(name + ": gap_jitter out of [0,1)");
  }
  auto check_burst = [&](const std::vector<std::uint32_t>& file_idx, Bytes request_size,
                         std::int64_t requests) {
    if (file_idx.empty()) throw ConfigError(name + ": burst with no files");
    for (auto f : file_idx) {
      if (f >= files.size()) throw ConfigError(name + ": burst file index out of range");
    }
    if (request_size <= 0) throw ConfigError(name + ": non-positive request size");
    if (requests < 0) throw ConfigError(name + ": negative request count");
  };
  for (const auto& b : startup) check_burst(b.files, b.request_size, b.requests);
  for (const auto& b : finale) check_burst(b.files, b.request_size, b.requests);
  for (const auto& b : cycle) {
    check_burst(b.files, b.request_size, b.requests);
    if (b.every_cycles < 1) throw ConfigError(name + ": every_cycles must be >= 1");
  }
  if (total_requests() == 0) throw ConfigError(name + ": profile performs no I/O");
}

}  // namespace craysim::workload
