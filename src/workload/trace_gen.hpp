// Standalone trace synthesis: runs an AppProfile against a minimal device
// timing model and emits records in the paper's trace format.
//
// This reproduces what the UNICOS library hooks captured: the process's own
// compute gaps (processTime), the wall-clock start of each request, and how
// long completion took. For full multi-process machine behaviour use the
// simulator (sim/simulator.hpp), which replays these traces or generates
// requests online.
#pragma once

#include <cstdint>

#include "trace/stream.hpp"
#include "workload/profile.hpp"

namespace craysim::workload {

struct TraceGenOptions {
  /// Fixed per-request service time (system call + file system code).
  Ticks base_service = Ticks::from_us(300);
  /// Device streaming bandwidth used for completion times.
  double device_mb_s = 50.0;
  /// Wall-clock cost of submitting an asynchronous request (process does
  /// not wait for the data).
  Ticks async_submit = Ticks::from_us(60);
  std::uint32_t process_id = 100;
  /// Trace file ids are profile file index + this base.
  std::uint32_t file_id_base = 0;
  /// Starting operation id (so merged traces keep ids unique).
  std::uint32_t first_operation_id = 1;
  /// Wall-clock time at which the process starts.
  Ticks start_at = Ticks::zero();
};

/// Synthesizes the complete logical trace of one run of `profile`.
[[nodiscard]] trace::Trace synthesize_trace(const AppProfile& profile,
                                            const TraceGenOptions& options = {});

/// Merges traces from several processes into one start-time-ordered trace
/// (what procstat reconstruction yields for a multiprogrammed machine).
[[nodiscard]] trace::Trace merge_traces(const std::vector<trace::Trace>& traces);

}  // namespace craysim::workload
