#include "workload/profiles.hpp"

#include "util/error.hpp"

namespace craysim::workload {
namespace {

// Shorthand for profile construction.
constexpr Bytes operator""_kib(unsigned long long v) { return static_cast<Bytes>(v) * kKiB; }
constexpr Bytes operator""_mb(unsigned long long v) { return static_cast<Bytes>(v) * kMB; }

AppProfile venus(std::uint64_t seed) {
  // Climate model of Venus' atmosphere. Deliberately tiny in-memory array to
  // land in a short batch queue; stages the whole 55.2 MB data set through
  // the file system every short cycle, interleaving six data files (§3, §6.2).
  AppProfile p;
  p.name = "venus";
  p.description = "Venus atmosphere climate model; tiny memory, heavy staging over 6 files";
  p.cpu_time = Ticks::from_seconds(379);
  p.cycles = 110;
  for (int i = 0; i < 6; ++i) {
    p.files.push_back({"venus-slab-" + std::to_string(i), Bytes{9'200'000}});
  }
  // Each ~3.4 s cycle: read the data set about 1.8x over ("that data may be
  // read more than once so it can be used in the computation in different
  // places"), compute, write back about half of it. 187 x 512 KiB reads and
  // 118 x 448 KiB writes round-robined over the six slabs reproduce the
  // published totals and the ~100 MB/s burst peaks of Figure 3.
  p.cycle.push_back({{0, 1, 2, 3, 4, 5}, /*write=*/false, /*async=*/false, 512_kib, 187});
  p.cycle.push_back({{0, 1, 2, 3, 4, 5}, /*write=*/true, /*async=*/false, 448_kib, 118});
  p.burst_cpu_fraction = 0.42;
  p.seed = seed;
  return p;
}

AppProfile les(std::uint64_t seed) {
  // Large eddy simulation (Navier-Stokes with turbulence). The only traced
  // program using explicit asynchronous reads and writes (§6.2).
  AppProfile p;
  p.name = "les";
  p.description = "large eddy simulation; explicit async I/O over two big arrays";
  p.cpu_time = Ticks::from_seconds(146);
  p.cycles = 29;
  p.files.push_back({"les-field", 112_mb});
  p.files.push_back({"les-scratch", 104_mb});
  p.files.push_back({"les-history", 8_mb});
  CycleBurst les_read{{0, 1}, /*write=*/false, /*async=*/true, 320_kib, 369};
  les_read.rewind = false;  // streams through the full arrays across cycles
  CycleBurst les_write{{0, 1}, /*write=*/true, /*async=*/true, 320_kib, 387};
  les_write.rewind = false;
  CycleBurst les_hist{{2}, /*write=*/true, /*async=*/true, 64_kib, 12};
  les_hist.rewind = false;
  p.cycle.push_back(les_read);
  p.cycle.push_back(les_write);
  p.cycle.push_back(les_hist);
  p.burst_cpu_fraction = 0.50;
  p.seed = seed;
  return p;
}

AppProfile bvi(std::uint64_t seed) {
  // Blade-vortex interaction CFD; the only program written for the SSD, so
  // it issues very many very small requests (§3, §5.2).
  AppProfile p;
  p.name = "bvi";
  p.description = "blade-vortex interaction; SSD-oriented, many small requests";
  p.cpu_time = Ticks::from_seconds(165);
  p.cycles = 150;
  p.files.push_back({"bvi-velocity", 90_mb});
  p.files.push_back({"bvi-vorticity", 66_mb});
  p.files.push_back({"bvi-blade", 15_mb});
  // 13440/28800-byte requests (1680/3600 Cray words) reproduce the published
  // 13.5 KB read / 28.9 KB write averages.
  CycleBurst bvi_read{{0, 1}, /*write=*/false, /*async=*/false, Bytes{13'440}, 1007};
  bvi_read.rewind = false;  // works through the whole staged arrays over the run
  CycleBurst bvi_write{{0, 1, 2}, /*write=*/true, /*async=*/false, Bytes{28'800}, 204};
  bvi_write.rewind = false;
  p.cycle.push_back(bvi_read);
  p.cycle.push_back(bvi_write);
  p.burst_cpu_fraction = 0.60;
  p.seed = seed;
  return p;
}

AppProfile ccm(std::uint64_t seed) {
  // Community Climate Model: memory/staging tradeoff intermediate between
  // gcm (all in memory) and venus (all staged).
  AppProfile p;
  p.name = "ccm";
  p.description = "Community Climate Model; intermediate staging intensity";
  p.cpu_time = Ticks::from_seconds(205);
  p.cycles = 100;
  p.files.push_back({"ccm-state", 8_mb});
  p.files.push_back({"ccm-history", Bytes{3'600'000}});
  CycleBurst ccm_read{{0, 1}, /*write=*/false, /*async=*/false, Bytes{30'720}, 284};
  ccm_read.rewind = false;  // state + history streamed across cycles
  CycleBurst ccm_write{{0, 1}, /*write=*/true, /*async=*/false, Bytes{30'720}, 264};
  ccm_write.rewind = false;
  p.cycle.push_back(ccm_read);
  p.cycle.push_back(ccm_write);
  p.burst_cpu_fraction = 0.30;
  p.seed = seed;
  return p;
}

AppProfile forma(std::uint64_t seed) {
  // Structural dynamics on sparse matrices (originally Cray-1). Blocks of
  // the array are re-read many times per factorization sweep, giving the
  // highest read rate and an 11:1 read/write ratio (§3).
  AppProfile p;
  p.name = "forma";
  p.description = "sparse-matrix structural dynamics; extreme re-read traffic";
  p.cpu_time = Ticks::from_seconds(206);
  p.cycles = 103;
  p.files.push_back({"forma-matrix", 24_mb});
  p.files.push_back({"forma-factor", 6_mb});
  p.cycle.push_back({{0}, /*write=*/false, /*async=*/false, Bytes{30'720}, 4049});
  p.cycle.push_back({{1}, /*write=*/true, /*async=*/false, Bytes{18'944}, 600});
  p.burst_cpu_fraction = 0.45;
  p.seed = seed;
  return p;
}

AppProfile gcm(std::uint64_t seed) {
  // Global Climate Model: in-memory simulation; only compulsory reads at
  // startup plus modest periodic history writes (§3, §5.1).
  AppProfile p;
  p.name = "gcm";
  p.description = "Global Climate Model; in-memory, compulsory I/O only";
  p.cpu_time = Ticks::from_seconds(1897);
  p.cycles = 100;
  p.files.push_back({"gcm-initial", 20_mb});
  p.files.push_back({"gcm-history", 209_mb});
  p.startup.push_back({{0}, /*write=*/false, Bytes{31'488}, 645});
  CycleBurst history{{1}, /*write=*/true, /*async=*/false, Bytes{31'232}, 73};
  history.rewind = false;  // history streams forward across the whole run
  p.cycle.push_back(history);
  p.burst_cpu_fraction = 0.20;
  p.seed = seed;
  return p;
}

AppProfile upw(std::uint64_t seed) {
  // Approximate polynomial factorization: read a small input, compute for
  // ten CPU minutes, stream out the answer. The least I/O of any program.
  AppProfile p;
  p.name = "upw";
  p.description = "polynomial factorization; minimal compulsory I/O";
  p.cpu_time = Ticks::from_seconds(596);
  p.cycles = 50;
  p.files.push_back({"upw-input", 1_mb});
  p.files.push_back({"upw-output", 59_mb});
  p.startup.push_back({{0}, /*write=*/false, 32_kib, 22});
  CycleBurst out{{1}, /*write=*/true, /*async=*/false, 32_kib, 36};
  out.rewind = false;
  p.cycle.push_back(out);
  p.burst_cpu_fraction = 0.10;
  p.seed = seed;
  return p;
}

}  // namespace

const std::vector<AppId>& all_apps() {
  static const std::vector<AppId> apps = {AppId::kBvi, AppId::kCcm, AppId::kForma, AppId::kGcm,
                                          AppId::kLes, AppId::kUpw, AppId::kVenus};
  return apps;
}

std::string_view app_name(AppId id) {
  switch (id) {
    case AppId::kBvi: return "bvi";
    case AppId::kCcm: return "ccm";
    case AppId::kForma: return "forma";
    case AppId::kGcm: return "gcm";
    case AppId::kLes: return "les";
    case AppId::kUpw: return "upw";
    case AppId::kVenus: return "venus";
  }
  throw ConfigError("unknown AppId");
}

std::optional<AppId> app_by_name(std::string_view name) {
  for (AppId id : all_apps()) {
    if (app_name(id) == name) return id;
  }
  return std::nullopt;
}

AppProfile make_profile(AppId id, std::uint64_t seed) {
  switch (id) {
    case AppId::kBvi: return bvi(seed);
    case AppId::kCcm: return ccm(seed);
    case AppId::kForma: return forma(seed);
    case AppId::kGcm: return gcm(seed);
    case AppId::kLes: return les(seed);
    case AppId::kUpw: return upw(seed);
    case AppId::kVenus: return venus(seed);
  }
  throw ConfigError("unknown AppId");
}

AppProfile make_typical_batch_job(int index) {
  AppProfile p;
  p.name = "batch-" + std::to_string(index);
  p.description = "typical mostly-compute batch job with per-cycle sync reads";
  p.cpu_time = Ticks::from_seconds(100.0 + 3.0 * index);
  p.cycles = 50 + 2 * index;  // copies drift out of phase
  p.files.push_back({"batch-data-" + std::to_string(index), Bytes{200} * kMB});
  CycleBurst read{{0}, /*write=*/false, /*async=*/false, 64_kib, 32};
  read.rewind = false;  // streams fresh data: cold misses every cycle
  p.cycle.push_back(read);
  p.burst_cpu_fraction = 0.2;
  p.seed = 0xBA7C + static_cast<std::uint64_t>(index) * 101;
  return p;
}

const PaperAppStats& paper_stats(AppId id) {
  // Reconstruction documented in DESIGN.md: Table 2 rates authoritative,
  // totals re-derived as rate x running time where the scan is damaged.
  static const PaperAppStats kBvi{"bvi", "CFD", 165, 171, 2911, 181'170, 17.6, 1098,
                                  12.3, 5.34, 913, 185, 16.1, 2.31};
  static const PaperAppStats kCcm{"ccm", "climate", 205, 11.6, 1683, 53'915, 8.2, 263,
                                  4.25, 3.96, 135, 128, 31.9, 1.07};
  static const PaperAppStats kForma{"forma", "structural", 206, 30.0, 13'982, 471'740, 67.9,
                                    2290, 62.2, 5.68, 1990, 300, 30.4, 11.0};
  static const PaperAppStats kGcm{"gcm", "climate", 1897, 229, 266, 7949, 0.14, 4.19,
                                  0.0107, 0.12, 0.34, 3.85, 34.3, 0.089};
  static const PaperAppStats kLes{"les", "large eddy", 146, 224, 7183, 22'630, 49.2, 155,
                                  24.0, 25.2, 74, 81, 325, 0.95};
  static const PaperAppStats kUpw{"upw", "polynomial", 596, 60, 61.5, 1840, 0.10, 3.09,
                                  0.0012, 0.100, 0.037, 3.05, 34.2, 0.012};
  static const PaperAppStats kVenus{"venus", "climate", 379, 55.2, 16'712, 34'868, 44.1, 92,
                                    28.4, 15.7, 59, 33, 490, 1.80};
  switch (id) {
    case AppId::kBvi: return kBvi;
    case AppId::kCcm: return kCcm;
    case AppId::kForma: return kForma;
    case AppId::kGcm: return kGcm;
    case AppId::kLes: return kLes;
    case AppId::kUpw: return kUpw;
    case AppId::kVenus: return kVenus;
  }
  throw ConfigError("unknown AppId");
}

}  // namespace craysim::workload
