// Turns an AppProfile into a concrete request stream.
//
// CPU-budget model: a small edge fraction of the profile's CPU time is spent
// around the startup/finale bursts; the rest is divided evenly over cycles.
// Within a cycle, `burst_cpu_fraction` of the budget is spread thinly between
// the requests of each burst, and the remainder forms the pure-compute phase
// before each burst — producing the evenly spaced request-rate peaks of
// Section 5.3. Gaps get multiplicative jitter but are renormalized so the
// profile's total CPU time is reproduced to within one tick per segment.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"
#include "workload/profile.hpp"
#include "workload/request.hpp"

namespace craysim::workload {

/// Streaming generator; deterministic for a given (profile, seed).
class AppRequestGenerator final : public RequestSource {
 public:
  explicit AppRequestGenerator(AppProfile profile);

  std::optional<Request> next() override;
  [[nodiscard]] Ticks final_compute() const override { return final_compute_; }

  [[nodiscard]] const AppProfile& profile() const { return profile_; }

  /// Drains the whole stream into a vector (convenience for tests/benches).
  [[nodiscard]] static std::vector<Request> generate_all(const AppProfile& profile);

 private:
  void refill();
  void emit_edge_bursts(const std::vector<EdgeBurst>& bursts, Ticks cpu_budget);
  void emit_cycle(std::int32_t cycle_index);
  /// Appends `count` gap values summing to `total` with jitter.
  void make_gaps(std::int64_t count, Ticks total, std::vector<Ticks>& out);
  Bytes next_offset(std::size_t burst_key, std::uint32_t file, Bytes request_size, bool rewind_now);

  AppProfile profile_;
  Rng rng_;
  std::vector<Request> pending_;
  std::size_t pending_pos_ = 0;
  std::int32_t next_cycle_ = 0;
  enum class Stage { kStartup, kCycles, kFinale, kDone } stage_ = Stage::kStartup;
  Ticks final_compute_;
  Ticks edge_cpu_each_;
  Ticks cycle_cpu_;
  // Per (burst-id, file) sequential cursor. burst-id: startup/finale bursts
  // and cycle bursts get distinct keys.
  std::vector<std::vector<Bytes>> cursors_;
  std::size_t cycle_burst_key_base_ = 0;
};

}  // namespace craysim::workload
