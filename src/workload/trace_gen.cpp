#include "workload/trace_gen.hpp"

#include <algorithm>

#include "trace/record.hpp"
#include "workload/generator.hpp"

namespace craysim::workload {

trace::Trace synthesize_trace(const AppProfile& profile, const TraceGenOptions& options) {
  AppRequestGenerator gen(profile);
  trace::Trace out;
  out.reserve(static_cast<std::size_t>(profile.total_requests()));
  Ticks wall = options.start_at;
  std::uint32_t op_id = options.first_operation_id;
  const double bytes_per_tick = options.device_mb_s * 1e6 / 100'000.0;

  while (auto req = gen.next()) {
    wall += req->compute;
    trace::TraceRecord record;
    record.record_type = trace::make_record_type(/*logical=*/true, req->write, req->async);
    record.offset = req->offset;
    record.length = req->length;
    record.start_time = wall;
    const auto transfer = Ticks(static_cast<std::int64_t>(
        static_cast<double>(req->length) / bytes_per_tick));
    record.completion_time = options.base_service + transfer;
    record.operation_id = op_id++;
    record.file_id = options.file_id_base + req->file;
    record.process_id = options.process_id;
    record.process_time = req->compute;
    out.push_back(record);
    // A synchronous process waits for completion; an asynchronous one only
    // pays the submission cost and overlaps the transfer with compute.
    wall += req->async ? options.async_submit : record.completion_time;
  }
  return out;
}

trace::Trace merge_traces(const std::vector<trace::Trace>& traces) {
  trace::Trace merged;
  std::size_t total = 0;
  for (const auto& t : traces) total += t.size();
  merged.reserve(total);
  for (const auto& t : traces) merged.insert(merged.end(), t.begin(), t.end());
  std::stable_sort(merged.begin(), merged.end(),
                   [](const trace::TraceRecord& a, const trace::TraceRecord& b) {
                     return a.start_time < b.start_time;
                   });
  return merged;
}

}  // namespace craysim::workload
