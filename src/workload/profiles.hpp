// The seven applications traced in the paper, as calibrated AppProfiles,
// plus the published statistics they are calibrated against.
//
// The scanned tables contain OCR damage and a few mutual inconsistencies
// between Table 1 and Table 2; `paper_stats` records the reconstruction
// documented in DESIGN.md (Table 2 rates are taken as authoritative, totals
// re-derived from rate x running time).
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "workload/profile.hpp"

namespace craysim::workload {

enum class AppId { kBvi, kCcm, kForma, kGcm, kLes, kUpw, kVenus };

/// All seven traced applications, in the paper's table order.
[[nodiscard]] const std::vector<AppId>& all_apps();

[[nodiscard]] std::string_view app_name(AppId id);
[[nodiscard]] std::optional<AppId> app_by_name(std::string_view name);

/// Calibrated synthetic model of the application. `seed` varies the gap
/// jitter stream (two venus instances in one simulation should not be
/// tick-identical).
[[nodiscard]] AppProfile make_profile(AppId id, std::uint64_t seed = 0x5eed);

/// A "typical supercomputer workload" job for the Section 2.2 scheduling
/// experiments: mostly compute, with a modest synchronous read burst per
/// iteration (about 10% of its time waiting on a cold cache). `index`
/// desynchronizes copies (different cycle counts and seeds) so their bursts
/// drift apart, as independent batch jobs' do.
[[nodiscard]] AppProfile make_typical_batch_job(int index);

/// Published per-application statistics (Tables 1 and 2).
struct PaperAppStats {
  std::string_view name;
  std::string_view domain;     ///< e.g. "CFD", "climate"
  double run_time_s;           ///< CPU seconds ("Running time")
  double data_set_mb;          ///< "Total data size"
  double total_io_mb;          ///< "Total I/O done"
  double num_ios;              ///< "Number of I/Os"
  double mb_per_s;             ///< Table 1 aggregate rate
  double ios_per_s;
  double read_mb_s;            ///< Table 2
  double write_mb_s;
  double read_ios_s;
  double write_ios_s;
  double avg_io_kb;
  double rw_ratio;             ///< read/write by data volume
};

[[nodiscard]] const PaperAppStats& paper_stats(AppId id);

}  // namespace craysim::workload
