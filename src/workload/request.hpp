// The request stream interface between workload models and consumers
// (the trace synthesizer and the buffering simulator).
#pragma once

#include <cstdint>
#include <optional>

#include "util/units.hpp"

namespace craysim::workload {

/// One application I/O request plus the CPU time the process computes before
/// issuing it. This is exactly the information a logical trace record carries
/// about application behaviour (everything else is machine response).
struct Request {
  Ticks compute;            ///< process CPU time consumed before this request
  std::uint32_t file = 0;   ///< logical file id (1-based within an app)
  Bytes offset = 0;
  Bytes length = 0;
  bool write = false;
  bool async = false;

  friend bool operator==(const Request&, const Request&) = default;
};

/// Pull-based request stream. Implementations: the synthetic application
/// generator (workload/generator.hpp) and the trace replayer (sim/process.hpp).
class RequestSource {
 public:
  virtual ~RequestSource() = default;

  /// Next request, or nullopt when the application has finished. After
  /// nullopt, final_compute() reports CPU the process still burns before
  /// exiting (work after its last I/O).
  virtual std::optional<Request> next() = 0;

  /// CPU time consumed after the last I/O (valid once next() returned
  /// nullopt). Default: none.
  [[nodiscard]] virtual Ticks final_compute() const { return Ticks::zero(); }
};

}  // namespace craysim::workload
