#include "workload/generator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace craysim::workload {

AppRequestGenerator::AppRequestGenerator(AppProfile profile)
    : profile_(std::move(profile)), rng_(profile_.seed) {
  profile_.validate();
  // Only profiles that actually have startup/finale bursts get an edge CPU
  // share; otherwise all CPU belongs to the cycles (keeping the trace's
  // observable CPU time equal to the published running time).
  const auto edge_total =
      Ticks(static_cast<std::int64_t>(static_cast<double>(profile_.cpu_time.count()) *
                                      profile_.edge_cpu_fraction));
  edge_cpu_each_ = edge_total / 2;
  Ticks edge_used;
  if (!profile_.startup.empty()) edge_used += edge_cpu_each_;
  if (!profile_.finale.empty()) edge_used += edge_cpu_each_;
  cycle_cpu_ = (profile_.cpu_time - edge_used) / profile_.cycles;
  final_compute_ = profile_.cpu_time - edge_used - cycle_cpu_ * profile_.cycles;  // remainder

  // Cursor table: startup bursts, then finale bursts, then cycle bursts.
  const std::size_t burst_kinds =
      profile_.startup.size() + profile_.finale.size() + profile_.cycle.size();
  cycle_burst_key_base_ = profile_.startup.size() + profile_.finale.size();
  cursors_.assign(burst_kinds, std::vector<Bytes>(profile_.files.size(), 0));
}

std::optional<Request> AppRequestGenerator::next() {
  while (pending_pos_ >= pending_.size()) {
    if (stage_ == Stage::kDone) return std::nullopt;
    refill();
  }
  return pending_[pending_pos_++];
}

void AppRequestGenerator::refill() {
  pending_.clear();
  pending_pos_ = 0;
  switch (stage_) {
    case Stage::kStartup:
      emit_edge_bursts(profile_.startup, edge_cpu_each_);
      stage_ = Stage::kCycles;
      next_cycle_ = 0;
      break;
    case Stage::kCycles:
      if (next_cycle_ >= profile_.cycles) {
        stage_ = Stage::kFinale;
      } else {
        emit_cycle(next_cycle_);
        ++next_cycle_;
      }
      break;
    case Stage::kFinale:
      emit_edge_bursts(profile_.finale, edge_cpu_each_);
      stage_ = Stage::kDone;
      break;
    case Stage::kDone:
      break;
  }
}

void AppRequestGenerator::emit_edge_bursts(const std::vector<EdgeBurst>& bursts,
                                           Ticks cpu_budget) {
  std::int64_t total_requests = 0;
  for (const auto& b : bursts) total_requests += b.requests;
  // No bursts: no budget was reserved for this edge (see the constructor).
  if (total_requests == 0) return;
  std::vector<Ticks> gaps;
  make_gaps(total_requests, cpu_budget, gaps);
  std::size_t gap_index = 0;
  // Key offset: startup bursts come first in the cursor table, finale next.
  const bool is_finale = (&bursts == &profile_.finale);
  const std::size_t key_base = is_finale ? profile_.startup.size() : 0;
  for (std::size_t bi = 0; bi < bursts.size(); ++bi) {
    const EdgeBurst& burst = bursts[bi];
    for (std::int64_t i = 0; i < burst.requests; ++i) {
      const std::uint32_t file =
          burst.files[static_cast<std::size_t>(i) % burst.files.size()];
      Request req;
      req.compute = gaps[gap_index++];
      req.file = file + 1;  // trace-level ids are 1-based
      req.length = burst.request_size;
      req.offset = next_offset(key_base + bi, file, burst.request_size, i == 0);
      req.write = burst.write;
      req.async = false;
      pending_.push_back(req);
    }
  }
}

void AppRequestGenerator::emit_cycle(std::int32_t cycle_index) {
  // Which bursts fire this cycle?
  std::vector<std::size_t> active;
  std::int64_t total_requests = 0;
  for (std::size_t bi = 0; bi < profile_.cycle.size(); ++bi) {
    const CycleBurst& b = profile_.cycle[bi];
    const bool fires = b.every_cycles <= 1 ||
                       cycle_index % b.every_cycles == b.phase % b.every_cycles;
    if (fires && b.requests > 0) {
      active.push_back(bi);
      total_requests += b.requests;
    }
  }
  if (active.empty() || total_requests == 0) {
    final_compute_ += cycle_cpu_;
    return;
  }

  const auto burst_cpu_total = Ticks(static_cast<std::int64_t>(
      static_cast<double>(cycle_cpu_.count()) * profile_.burst_cpu_fraction));
  const Ticks think_cpu_total = cycle_cpu_ - burst_cpu_total;
  const Ticks think_per_burst = think_cpu_total / static_cast<std::int64_t>(active.size());
  Ticks think_remainder =
      think_cpu_total - think_per_burst * static_cast<std::int64_t>(active.size());

  Ticks burst_cpu_spent;
  for (std::size_t ai = 0; ai < active.size(); ++ai) {
    const CycleBurst& burst = profile_.cycle[active[ai]];
    // This burst's share of the thin intra-burst CPU, proportional to its
    // request count; the last active burst absorbs rounding.
    Ticks share = (ai + 1 == active.size())
                      ? burst_cpu_total - burst_cpu_spent
                      : Ticks(static_cast<std::int64_t>(
                            static_cast<double>(burst_cpu_total.count()) *
                            static_cast<double>(burst.requests) /
                            static_cast<double>(total_requests)));
    burst_cpu_spent += share;
    std::vector<Ticks> gaps;
    make_gaps(burst.requests, share, gaps);

    for (std::int64_t i = 0; i < burst.requests; ++i) {
      const std::uint32_t file =
          burst.files[static_cast<std::size_t>(i) % burst.files.size()];
      Request req;
      req.compute = gaps[static_cast<std::size_t>(i)];
      if (i == 0) {
        // The pure-compute phase precedes each burst.
        req.compute += think_per_burst + (ai == 0 ? think_remainder : Ticks::zero());
      }
      req.file = file + 1;
      req.length = burst.request_size;
      req.offset = next_offset(cycle_burst_key_base_ + active[ai], file, burst.request_size,
                               burst.rewind && i < static_cast<std::int64_t>(burst.files.size()));
      req.write = burst.write;
      req.async = burst.async;
      pending_.push_back(req);
    }
  }
}

void AppRequestGenerator::make_gaps(std::int64_t count, Ticks total, std::vector<Ticks>& out) {
  out.clear();
  if (count <= 0) return;
  out.reserve(static_cast<std::size_t>(count));
  if (profile_.gap_jitter <= 0.0) {
    const Ticks each = total / count;
    Ticks used;
    for (std::int64_t i = 0; i < count - 1; ++i) {
      out.push_back(each);
      used += each;
    }
    out.push_back(total - used);
    return;
  }
  std::vector<double> weights(static_cast<std::size_t>(count));
  double sum = 0.0;
  for (auto& w : weights) {
    w = rng_.uniform_real(1.0 - profile_.gap_jitter, 1.0 + profile_.gap_jitter);
    sum += w;
  }
  const double scale = static_cast<double>(total.count()) / sum;
  Ticks used;
  for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
    const auto gap = Ticks(static_cast<std::int64_t>(weights[i] * scale));
    out.push_back(gap);
    used += gap;
  }
  out.push_back(total - used);  // exact total, last gap absorbs rounding
}

Bytes AppRequestGenerator::next_offset(std::size_t burst_key, std::uint32_t file,
                                       Bytes request_size, bool rewind_now) {
  Bytes& cursor = cursors_[burst_key][file];
  if (rewind_now) cursor = 0;
  const Bytes file_size = profile_.files[file].size;
  // Wrap to the start when the next request would run past the end — the
  // paper's programs re-sweep their data regions.
  if (file_size > 0 && cursor + request_size > file_size && cursor != 0) cursor = 0;
  const Bytes offset = cursor;
  cursor += request_size;
  return offset;
}

std::vector<Request> AppRequestGenerator::generate_all(const AppProfile& profile) {
  AppRequestGenerator gen(profile);
  std::vector<Request> out;
  while (auto req = gen.next()) out.push_back(*req);
  return out;
}

}  // namespace craysim::workload
