// Reproduces Figure 8: idle time while running two instances of venus, as a
// function of cache size (4..256 MB) and cache block size (4 KB vs 8 KB).
//
// "Execution time would be 761 seconds if there were no idle time" — idle
// time falls from hundreds of seconds in small caches to ~zero once both
// working sets fit.
//
// The 14 (size, block-size) simulations fan out across the experiment
// runner; results come back in sweep order, so the table and CSV are
// byte-identical to a serial run.
//
// Telemetry: "--metrics", "--perfetto" (one instrumented 32 MB / 4 K
// replay), "--perfetto-sweep" (all 14 points merged into one Perfetto
// timeline), "--timeseries", "--counter-interval <ms>". All passive.
#include <cstdio>
#include <numeric>
#include <vector>

#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "runner/runner.hpp"
#include "sim/simulator.hpp"
#include "sweep_obs.hpp"
#include "util/table.hpp"
#include "workload/profiles.hpp"

namespace {

struct SweepPoint {
  craysim::Bytes cache_mb = 0;
  craysim::Bytes block = 0;
};

craysim::sim::SimParams point_params(const SweepPoint& point) {
  using namespace craysim;
  sim::SimParams params = sim::SimParams::paper_ssd(point.cache_mb * kMB);
  params.cache.block_size = point.block;
  return params;
}

craysim::sim::SimResult run_with(const craysim::sim::SimParams& params) {
  using namespace craysim;
  sim::Simulator simulator(params);
  simulator.add_app(workload::make_profile(workload::AppId::kVenus, 11));
  simulator.add_app(workload::make_profile(workload::AppId::kVenus, 22));
  return simulator.run();
}

std::string point_label(const SweepPoint& point) {
  return std::to_string(point.cache_mb) + " MB / " +
         (point.block == 4 * craysim::kKiB ? "4K" : "8K");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace craysim;
  const bench::ObsArgs obs_args = bench::ObsArgs::take(argc, argv);
  const bench::ResilienceArgs res_args = bench::ResilienceArgs::take(argc, argv);
  bench::heading("Figure 8: idle time vs cache size, 2 x venus (4 KB and 8 KB blocks)");

  const Bytes sizes_mb[] = {4, 8, 16, 32, 64, 128, 256};
  std::vector<SweepPoint> points;
  for (const Bytes mb : sizes_mb) {
    points.push_back({mb, 4 * kKiB});
    points.push_back({mb, 8 * kKiB});
  }
  runner::RunnerOptions runner_options = runner::RunnerOptions::from_env();
  runner_options.collect_telemetry = !obs_args.metrics_path.empty();
  bench::apply_resilience(res_args, runner_options);
  bench::SweepObserver sweep_obs(obs_args, points.size());
  sweep_obs.arm_flight(res_args);
  bench::apply_telemetry(obs_args, runner_options, nullptr, sweep_obs);
  runner::ExperimentRunner pool(runner_options);
  std::vector<std::size_t> indices(points.size());
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  const bench::SimResultCodec codec([&](std::size_t i) { return point_label(points[i]); });
  const auto results = bench::run_sweep(pool, res_args, indices, [&](std::size_t i) {
    sim::SimParams params = point_params(points[i]);
    sweep_obs.instrument(i, point_label(points[i]), params);
    return run_with(params);
  }, codec, &sweep_obs);

  TextTable table({"cache MB", "idle s (4K blocks)", "idle s (8K blocks)", "wall s (4K)",
                   "util % (4K)"});
  std::string csv = "cache_mb,idle_4k_s,idle_8k_s\n";
  double idle_small_4k = 0;
  double idle_big_4k = 0;
  for (std::size_t i = 0; i < points.size(); i += 2) {
    const Bytes mb = points[i].cache_mb;
    const auto& r4 = results[i];
    const auto& r8 = results[i + 1];
    table.row()
        .integer(mb)
        .num(r4.idle_time().seconds(), 1)
        .num(r8.idle_time().seconds(), 1)
        .num(r4.total_wall.seconds(), 1)
        .num(100.0 * r4.cpu_utilization(), 1);
    csv += format_number(static_cast<double>(mb), 0) + "," +
           format_number(r4.idle_time().seconds(), 2) + "," +
           format_number(r8.idle_time().seconds(), 2) + "\n";
    if (mb == 4) idle_small_4k = r4.idle_time().seconds();
    if (mb == 256) idle_big_4k = r4.idle_time().seconds();
  }
  std::printf("%s", table.render().c_str());
  std::printf("--- CSV ---\n%s--- end CSV ---\n", csv.c_str());
  std::printf("(no-idle execution time would be ~761 s: 2 x 379 s of CPU plus overheads)\n");

  bench::check(idle_small_4k > 50.0, "small (4 MB) caches leave substantial idle time");
  bench::check(idle_big_4k < 5.0, "a 256 MB cache eliminates nearly all idle time");
  bench::check(idle_small_4k > 20.0 * std::max(idle_big_4k, 0.5),
               "idle time falls by orders of magnitude across the sweep");

  if (!sweep_obs.finish()) return 1;
  if (!bench::write_point_trace(obs_args, point_params({32, 4 * kKiB}),
                                [](const sim::SimParams& p) { (void)run_with(p); })) {
    return 1;
  }
  if (!obs_args.metrics_path.empty()) {
    obs::MetricsRegistry registry;
    results[0].publish_metrics(registry, "sim");
    pool.publish_metrics(registry);
    registry.save_jsonl(obs_args.metrics_path);
    std::printf("wrote %zu metrics to %s\n", registry.size(), obs_args.metrics_path.c_str());
  }
  return 0;
}
