// Reproduces Figure 6: disk data rate for two simultaneously running copies
// of venus with a 32 MB main-memory cache (first 200 wall-clock seconds).
//
// The paper's point: even with read-ahead and write-behind, the 32 MB cache
// does NOT smooth the request stream — disk traffic stays bursty, because
// the simulator's disks never queue and the two programs' bursts bunch up.
#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

#include "analysis/series.hpp"
#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "runner/runner.hpp"
#include "sim/simulator.hpp"
#include "sweep_obs.hpp"
#include "util/stats.hpp"
#include "workload/profiles.hpp"

namespace {

craysim::sim::SimResult run_with(const craysim::sim::SimParams& params) {
  using namespace craysim;
  sim::Simulator simulator(params);
  simulator.add_app(workload::make_profile(workload::AppId::kVenus, 11));
  simulator.add_app(workload::make_profile(workload::AppId::kVenus, 22));
  return simulator.run();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace craysim;
  const bench::ObsArgs obs_args = bench::ObsArgs::take(argc, argv);
  const bench::ResilienceArgs res_args = bench::ResilienceArgs::take(argc, argv);
  bench::heading("Figure 6: 2 x venus, 32 MB main-memory cache -- disk data rate (wall time)");

  // A single configuration, still dispatched through the experiment runner so
  // every figure bench shares one execution path.
  runner::RunnerOptions runner_options = runner::RunnerOptions::from_env();
  runner_options.collect_telemetry = !obs_args.metrics_path.empty();
  bench::apply_resilience(res_args, runner_options);
  bench::SweepObserver sweep_obs(obs_args, 1);
  sweep_obs.arm_flight(res_args);
  bench::apply_telemetry(obs_args, runner_options, nullptr, sweep_obs);
  runner::ExperimentRunner pool(runner_options);
  const std::vector<std::size_t> points = {0};
  const bench::SimResultCodec codec([](std::size_t) { return "venus x2, 32 MB cache"; });
  sim::SimResult result = std::move(bench::run_sweep(pool, res_args, points, [&](std::size_t) {
    sim::SimParams params = sim::SimParams::paper_main_memory(Bytes{32} * kMB);
    sweep_obs.instrument(0, "venus x2, 32 MB cache", params);
    return run_with(params);
  }, codec, &sweep_obs)[0]);

  auto rates = result.disk_rate.rates();
  const std::size_t window = std::min<std::size_t>(rates.size(), 200);
  std::vector<double> first200(rates.begin(), rates.begin() + static_cast<std::ptrdiff_t>(window));
  bench::print_rate_figure(first200, "disk MB/s", "wall seconds",
                           result.disk_rate.bin_width().seconds());
  std::printf("%s", result.summary().c_str());

  std::vector<double> mb(first200.size());
  for (std::size_t i = 0; i < first200.size(); ++i) mb[i] = first200[i] / 1e6;
  const double p2m = analysis::peak_to_mean(mb);
  std::printf("disk-traffic peak/mean over first 200 s: %.2f\n", p2m);

  bench::check(p2m > 1.5, "disk demand is NOT smoothed out by the 32 MB cache (still bursty)");
  bench::check(result.cpu_idle > Ticks::from_seconds(5),
               "a 32 MB main-memory cache leaves real CPU idle time for 2 x venus");

  if (!sweep_obs.finish()) return 1;
  if (!bench::write_point_trace(obs_args, sim::SimParams::paper_main_memory(Bytes{32} * kMB),
                                [](const sim::SimParams& p) { (void)run_with(p); })) {
    return 1;
  }
  if (!obs_args.metrics_path.empty()) {
    obs::MetricsRegistry registry;
    result.publish_metrics(registry, "sim");
    pool.publish_metrics(registry);
    registry.save_jsonl(obs_args.metrics_path);
    std::printf("wrote %zu metrics to %s\n", registry.size(), obs_args.metrics_path.c_str());
  }
  return 0;
}
