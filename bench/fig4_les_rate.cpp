// Reproduces Figure 4: data rate over process CPU time for les.
//
// The paper's plot runs over les's 146 CPU seconds with a mean near
// 49.8 MB/s and tall per-cycle bursts.
#include <algorithm>
#include <cstdio>

#include "analysis/series.hpp"
#include "bench_common.hpp"
#include "util/stats.hpp"
#include "workload/profiles.hpp"
#include "workload/trace_gen.hpp"

int main() {
  using namespace craysim;
  bench::heading("Figure 4: Data rate over time for les (MB per CPU second)");

  const auto profile = workload::make_profile(workload::AppId::kLes);
  const auto trace = workload::synthesize_trace(profile);
  const BinnedSeries series = analysis::cpu_time_rate_series(trace);
  const auto rates = series.rates();
  bench::print_rate_figure(rates, "MB/s", "process CPU seconds", series.bin_width().seconds());

  std::vector<double> mb(rates.size());
  for (std::size_t i = 0; i < rates.size(); ++i) mb[i] = rates[i] / 1e6;
  const double mean = mean_of(mb);
  const double peak = *std::max_element(mb.begin(), mb.end());
  std::printf("mean %.1f MB/s (paper ~49.8), peak %.1f MB/s, span %.0f s (paper 146 s)\n", mean,
              peak, static_cast<double>(mb.size()) * series.bin_width().seconds());

  bench::check(mean > 40 && mean < 60, "mean data rate ~49.8 MB per CPU second");
  bench::check(analysis::peak_to_mean(mb) > 1.4, "per-cycle bursts stand well above the mean");
  bench::check(mb.size() >= 140 && mb.size() <= 155, "run spans ~146 CPU seconds");
  return 0;
}
