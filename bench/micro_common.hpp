// Shared main() for the google-benchmark micro benches: the standard CLI
// plus "--json <path>", which appends each benchmark's ns/op to one section
// of a shared metrics file (BENCH_micro.json) for machine comparison across
// builds.
#pragma once

#include <benchmark/benchmark.h>

#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"

namespace craysim::bench {

/// Console reporter that also captures ns/op per benchmark.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.iterations <= 0) continue;
      const double ns_per_op =
          run.real_accumulated_time / static_cast<double>(run.iterations) * 1e9;
      values_.emplace_back(run.benchmark_name() + "_ns_per_op", ns_per_op);
    }
    ConsoleReporter::ReportRuns(runs);
  }

  [[nodiscard]] const std::vector<std::pair<std::string, double>>& values() const {
    return values_;
  }

 private:
  std::vector<std::pair<std::string, double>> values_;
};

/// Drop-in replacement for BENCHMARK_MAIN()'s body.
inline int run_micro_main(int argc, char** argv, const std::string& section) {
  const std::string json_path = take_json_arg(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  if (!json_path.empty()) write_json_section(json_path, section, reporter.values());
  return 0;
}

}  // namespace craysim::bench
