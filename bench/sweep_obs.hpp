// Sweep-scale telemetry helper shared by the figure/table benches.
//
// Wraps an obs::SpanRecorderPool behind the ObsArgs flags: each sweep point
// claims its own recorder (plus the sim-time counter sampling interval)
// right where its SimParams are built, and finish() validates every
// recording and writes the merged Perfetto trace / counter time series the
// user asked for. With neither --perfetto-sweep nor --timeseries given the
// pool is disabled and instrument() is a no-op, so the sweep's results and
// printed output are byte-identical to an untelemetered run.
#pragma once

#include <cstdio>
#include <string>
#include <utility>

#include "bench_common.hpp"
#include "obs/span_pool.hpp"
#include "sim/params.hpp"

namespace craysim::bench {

/// Sampling period used when sweep telemetry is on but --counter-interval
/// was not given: 100 ms of simulated time keeps even hour-long runs under
/// ~40k samples per counter track.
inline constexpr double kDefaultCounterIntervalMs = 100.0;

class SweepObserver {
 public:
  SweepObserver(const ObsArgs& args, std::size_t points)
      : args_(args), pool_(points, args.sweep_telemetry()) {}

  [[nodiscard]] bool enabled() const { return pool_.enabled(); }
  [[nodiscard]] obs::SpanRecorderPool& pool() { return pool_; }

  /// Claims point `index`'s recorder and wires it — plus the counter
  /// sampling interval — into `params`. No-op when sweep telemetry is off
  /// (params keeps its null spans default, so the claim path reads no
  /// clocks and the simulation does zero telemetry work).
  void instrument(std::size_t index, std::string label, sim::SimParams& params) {
    obs::SpanRecorder* recorder = pool_.claim(index, std::move(label));
    if (recorder == nullptr) return;
    params.spans = recorder;
    const double ms =
        args_.counter_interval_ms > 0.0 ? args_.counter_interval_ms : kDefaultCounterIntervalMs;
    params.counter_interval = Ticks::from_ms(ms);
  }

  /// Validates every recording and writes the requested artifacts. Returns
  /// false (after printing the violation to stderr) if any point's spans
  /// are inconsistent; callers should fail the bench run in that case.
  [[nodiscard]] bool finish() {
    if (!pool_.enabled()) return true;
    const std::string problem = obs::check_consistency(pool_);
    if (!problem.empty()) {
      std::fprintf(stderr, "sweep span consistency check failed: %s\n", problem.c_str());
      return false;
    }
    if (!args_.perfetto_sweep_path.empty()) {
      pool_.save_merged(args_.perfetto_sweep_path);
      std::printf("\nwrote merged sweep trace (%zu points) to %s\n", pool_.size(),
                  args_.perfetto_sweep_path.c_str());
    }
    if (!args_.timeseries_path.empty()) {
      pool_.save_counter_series(args_.timeseries_path);
      std::printf("wrote counter time series to %s\n", args_.timeseries_path.c_str());
    }
    return true;
  }

 private:
  ObsArgs args_;
  obs::SpanRecorderPool pool_;
};

/// Single-point "--perfetto" support shared by the benches: re-runs one
/// representative configuration with a span recorder (and counter sampling)
/// attached, validates the recording, and writes the Chrome-trace file.
/// `run` receives the instrumented params and must execute the simulation.
/// Returns false on a consistency violation; no-op (true) when --perfetto
/// was not given.
template <typename RunFn>
[[nodiscard]] bool write_point_trace(const ObsArgs& args, sim::SimParams params, RunFn&& run) {
  if (args.perfetto_path.empty()) return true;
  obs::SpanRecorder spans;
  params.spans = &spans;
  const double ms =
      args.counter_interval_ms > 0.0 ? args.counter_interval_ms : kDefaultCounterIntervalMs;
  params.counter_interval = Ticks::from_ms(ms);
  run(static_cast<const sim::SimParams&>(params));
  const std::string problem = obs::check_consistency(spans);
  if (!problem.empty()) {
    std::fprintf(stderr, "span consistency check failed: %s\n", problem.c_str());
    return false;
  }
  spans.save(args.perfetto_path);
  std::printf("\nwrote %zu span events to %s\n", spans.size(), args.perfetto_path.c_str());
  return true;
}

}  // namespace craysim::bench
