// Sweep-scale telemetry helper shared by the figure/table benches.
//
// Wraps an obs::SpanRecorderPool behind the ObsArgs flags: each sweep point
// claims its own recorder (plus the sim-time counter sampling interval)
// right where its SimParams are built, and finish() validates every
// recording and writes the merged Perfetto trace / counter time series the
// user asked for. With neither --perfetto-sweep nor --timeseries given the
// pool is disabled and instrument() is a no-op, so the sweep's results and
// printed output are byte-identical to an untelemetered run.
//
// Latency attribution rides the same shape (docs/OBSERVABILITY.md): with
// --attribution (or --listen) each point gets its own obs::AttributionLedger,
// finish() writes the per-point blame rows as JSONL and prints the merged
// "where did the time go" report, and the four-argument apply_telemetry
// overload serves the merged ledgers live on /attribution and as sim_attr_*
// metrics. Without those flags params.attribution stays null and the sweep
// is bit-identical.
//
// Also home to the benches' resilience wiring (docs/RESILIENCE.md):
// apply_resilience() maps the ResilienceArgs flags onto RunnerOptions, the
// codecs give the runner's journal a lossless round trip for the two result
// types the sweeps produce, and run_sweep() runs the journal-capable runner
// path, reporting per-point outcomes when any flag was given. With no flag
// given all of it collapses to the legacy pool.run path, byte for byte.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "analysis/attribution.hpp"
#include "bench_common.hpp"
#include "obs/attr.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/sanitize.hpp"
#include "obs/span_pool.hpp"
#include "runner/runner.hpp"
#include "sim/metrics.hpp"
#include "sim/params.hpp"
#include "util/atomic_file.hpp"
#include "util/digest.hpp"

namespace craysim::bench {

/// Sampling period used when sweep telemetry is on but --counter-interval
/// was not given: 100 ms of simulated time keeps even hour-long runs under
/// ~40k samples per counter track.
inline constexpr double kDefaultCounterIntervalMs = 100.0;

class SweepObserver {
 public:
  SweepObserver(const ObsArgs& args, std::size_t points)
      : args_(args), pool_(points, args.sweep_telemetry()) {
    if (args.attribution()) {
      ledgers_ = std::make_unique<obs::AttributionLedger[]>(points);
      attr_labels_.assign(points, {});
    }
  }

  [[nodiscard]] bool enabled() const { return pool_.enabled(); }
  [[nodiscard]] obs::SpanRecorderPool& pool() { return pool_; }

  /// Did --attribution (or --listen, which serves /attribution) arm the
  /// per-point blame ledgers?
  [[nodiscard]] bool attribution_enabled() const { return ledgers_ != nullptr; }

  /// Arms the deadline flight recorder (docs/OBSERVABILITY.md): one bounded
  /// ring per point, filled by a span tee while the point runs, dumped to
  /// `<journal>.flight.json` by dump_flight() when any point times out.
  /// Armed only for journaled sweeps with a deadline — the combination
  /// where a timed-out point would otherwise leave no evidence behind.
  void arm_flight(const ResilienceArgs& res) {
    if (res.journal_path.empty() || res.deadline_s <= 0.0) return;
    flight_path_ = res.journal_path + ".flight.json";
    flight_deadline_s_ = res.deadline_s;
    flights_ = std::vector<obs::FlightRecorder>(pool_.size());
    flight_labels_.resize(pool_.size());
    if (!pool_.enabled()) flight_spans_ = std::vector<obs::SpanRecorder>(pool_.size());
  }

  [[nodiscard]] bool flight_armed() const { return !flights_.empty(); }
  [[nodiscard]] const std::string& flight_path() const { return flight_path_; }

  /// Claims point `index`'s recorder and wires it — plus the counter
  /// sampling interval — into `params`. No-op when sweep telemetry is off
  /// and no flight ring is armed (params keeps its null spans default, so
  /// the claim path reads no clocks and the simulation does zero telemetry
  /// work). With a flight ring armed but Perfetto export off, the point gets
  /// a constant-memory flight-only recorder instead (events tee into the
  /// ring and are not retained).
  void instrument(std::size_t index, std::string label, sim::SimParams& params) {
    if (ledgers_ != nullptr && index < pool_.size()) {
      {
        // The live /attribution handler reads labels concurrently, so writes
        // go under a mutex (once per point — never on the simulated op path).
        const std::lock_guard<std::mutex> lock(attr_mutex_);
        attr_labels_[index] = label;
      }
      // Accumulate-only: a point retried after a chaos failure folds every
      // attempt's ops into the same ledger, so chaos-run blame reports can
      // count an op more than once. Deterministic runs record each op once.
      params.attribution = &ledgers_[index];
    }
    if (flight_armed() && index < flight_labels_.size()) flight_labels_[index] = label;
    obs::SpanRecorder* recorder = pool_.claim(index, std::move(label));
    if (recorder == nullptr) {
      if (!flight_armed() || index >= flight_spans_.size()) return;
      recorder = &flight_spans_[index];
      recorder->set_flight(&flights_[index], /*keep_events=*/false);
    } else if (flight_armed() && index < flights_.size()) {
      recorder->set_flight(&flights_[index]);
    }
    params.spans = recorder;
    const double ms =
        args_.counter_interval_ms > 0.0 ? args_.counter_interval_ms : kDefaultCounterIntervalMs;
    params.counter_interval = Ticks::from_ms(ms);
  }

  /// Writes `<journal>.flight.json` (atomically) when the flight ring is
  /// armed and at least one point settled as timed out: one record per
  /// timed-out point with its outcome and the tail of its recording. Points
  /// that never reached their own simulation (a chaos hang cancelled before
  /// the body ran) appear with an empty event tail — the outcome fields
  /// still say what happened. No-op otherwise. Returns the path written, or
  /// "" when nothing was dumped (so callers can report it to /status).
  std::string dump_flight(const std::vector<runner::PointOutcome>& outcomes) {
    if (!flight_armed()) return {};
    std::size_t timed_out = 0;
    for (const auto& outcome : outcomes) {
      if (outcome.status == runner::PointStatus::kTimedOut) ++timed_out;
    }
    if (timed_out == 0) return {};
    std::ostringstream out;
    out << "{\"craysim_flight\":1,\"deadline_s\":" << flight_deadline_s_
        << ",\"capacity\":" << obs::FlightRecorder::kDefaultCapacity << ",\"points\":[";
    bool first = true;
    for (std::size_t i = 0; i < outcomes.size() && i < flights_.size(); ++i) {
      if (outcomes[i].status != runner::PointStatus::kTimedOut) continue;
      if (!first) out << ",";
      first = false;
      const std::string& label =
          flight_labels_[i].empty() ? "point " + std::to_string(i) : flight_labels_[i];
      out << "{\"point\":" << i << ",\"label\":\"" << obs::json_escape(label)
          << "\",\"status\":\"" << runner::point_status_name(outcomes[i].status)
          << "\",\"attempts\":" << outcomes[i].attempts
          << ",\"backoff_ns\":" << outcomes[i].backoff_ns << ",\"error\":\""
          << obs::json_escape(outcomes[i].error) << "\",";
      flights_[i].write_json_events(out);
      out << "}";
    }
    out << "]}\n";
    util::write_file_atomic(flight_path_, out.str());
    std::printf("wrote flight recording (%zu timed-out points) to %s\n", timed_out,
                flight_path_.c_str());
    return flight_path_;
  }

  /// Blame totals across every point's ledger, merged by row key. Safe to
  /// call mid-sweep (the ledgers are built for concurrent scrapes); the
  /// result is a monotonic in-progress view, like /metrics counters.
  [[nodiscard]] obs::AttrSummary attribution_summary() const {
    obs::AttrSummary merged;
    if (ledgers_ == nullptr) return merged;
    for (std::size_t i = 0; i < pool_.size(); ++i) {
      obs::merge_attr_summary(merged, ledgers_[i].summarize());
    }
    return merged;
  }

  /// The /attribution payload: the merged summary as one JSON object
  /// (top-level marker "craysim_attribution").
  [[nodiscard]] std::string attribution_json() const {
    std::ostringstream out;
    obs::write_attr_json(out, attribution_summary());
    out << "\n";
    return out.str();
  }

  /// Publishes the merged summary into `registry` under "sim.attr" (the
  /// sim_attr_* Prometheus families). Wired into the runner's per-scrape
  /// hook by apply_telemetry below.
  void publish_attribution(obs::MetricsRegistry& registry) const {
    if (ledgers_ == nullptr) return;
    const obs::AttrSummary merged = attribution_summary();
    if (merged.enabled) obs::publish_attr_metrics(merged, registry);
  }

  /// Writes the per-point JSONL blame ledgers and prints the merged blame
  /// report. finish() calls this on success; run_sweep() calls it before a
  /// failure exit, so — like the flight dump — a sweep that dies of
  /// timeouts still leaves its attribution evidence behind. No-op unless
  /// --attribution was given.
  void write_attribution_artifact() const {
    if (ledgers_ == nullptr || args_.attribution_path.empty()) return;
    std::ostringstream out;
    for (std::size_t i = 0; i < pool_.size(); ++i) {
      std::string label;
      {
        const std::lock_guard<std::mutex> lock(attr_mutex_);
        label = attr_labels_[i];
      }
      if (label.empty()) label = "point " + std::to_string(i);
      // Journal-restored points never re-ran their simulation, so their
      // ledgers are empty; they still emit a zero total row so the file
      // always carries one "total" line per sweep point.
      obs::write_attr_jsonl(out, ledgers_[i].summarize(), label);
    }
    util::write_file_atomic(args_.attribution_path, out.str());
    std::printf("wrote attribution ledgers (%zu points) to %s\n", pool_.size(),
                args_.attribution_path.c_str());
    std::printf("\n%s", analysis::attribution_report(attribution_summary(),
                                                     args_.attr_top).c_str());
  }

  /// Validates every recording and writes the requested artifacts. Returns
  /// false (after printing the violation to stderr) if any point's spans
  /// are inconsistent; callers should fail the bench run in that case.
  [[nodiscard]] bool finish() {
    if (pool_.enabled()) {
      const std::string problem = obs::check_consistency(pool_);
      if (!problem.empty()) {
        std::fprintf(stderr, "sweep span consistency check failed: %s\n", problem.c_str());
        return false;
      }
      if (!args_.perfetto_sweep_path.empty()) {
        pool_.save_merged(args_.perfetto_sweep_path);
        std::printf("\nwrote merged sweep trace (%zu points) to %s\n", pool_.size(),
                    args_.perfetto_sweep_path.c_str());
      }
      if (!args_.timeseries_path.empty()) {
        pool_.save_counter_series(args_.timeseries_path);
        std::printf("wrote counter time series to %s\n", args_.timeseries_path.c_str());
      }
    }
    write_attribution_artifact();
    return true;
  }

 private:
  ObsArgs args_;
  obs::SpanRecorderPool pool_;

  // Attribution state; null unless args.attribution(). One ledger per sweep
  // point (heap array — each ledger is several KiB of cache-line-aligned
  // atomics), sized once so workers and the live handler hold stable
  // pointers. The ledgers themselves are scraped lock-free; only the label
  // strings need the mutex.
  std::unique_ptr<obs::AttributionLedger[]> ledgers_;
  mutable std::mutex attr_mutex_;           ///< guards attr_labels_ contents
  std::vector<std::string> attr_labels_;

  // Flight-recorder state; all empty until arm_flight(). The vectors are
  // sized once (never reallocated mid-sweep — workers hold pointers into
  // them) and each slot is touched only by the worker running that point.
  std::string flight_path_;
  double flight_deadline_s_ = 0.0;
  std::vector<obs::FlightRecorder> flights_;
  std::vector<obs::SpanRecorder> flight_spans_;  ///< flight-only probes (Perfetto off)
  std::vector<std::string> flight_labels_;
};

/// Single-point "--perfetto" support shared by the benches: re-runs one
/// representative configuration with a span recorder (and counter sampling)
/// attached, validates the recording, and writes the Chrome-trace file.
/// `run` receives the instrumented params and must execute the simulation.
/// Returns false on a consistency violation; no-op (true) when --perfetto
/// was not given.
template <typename RunFn>
[[nodiscard]] bool write_point_trace(const ObsArgs& args, sim::SimParams params, RunFn&& run) {
  if (args.perfetto_path.empty()) return true;
  obs::SpanRecorder spans;
  params.spans = &spans;
  const double ms =
      args.counter_interval_ms > 0.0 ? args.counter_interval_ms : kDefaultCounterIntervalMs;
  params.counter_interval = Ticks::from_ms(ms);
  run(static_cast<const sim::SimParams&>(params));
  const std::string problem = obs::check_consistency(spans);
  if (!problem.empty()) {
    std::fprintf(stderr, "span consistency check failed: %s\n", problem.c_str());
    return false;
  }
  spans.save(args.perfetto_path);
  std::printf("\nwrote %zu span events to %s\n", spans.size(), args.perfetto_path.c_str());
  return true;
}

/// Maps the ResilienceArgs CLI flags onto RunnerOptions. Flags left at their
/// defaults change nothing, so absent flags keep the options bit-identical
/// (and the runner on its legacy path).
inline void apply_resilience(const ResilienceArgs& args, runner::RunnerOptions& options) {
  if (!args.journal_path.empty()) options.journal_path = args.journal_path;
  if (args.deadline_s > 0.0) {
    options.point_deadline =
        std::chrono::nanoseconds(static_cast<std::int64_t>(args.deadline_s * 1e9));
  }
  if (args.max_attempts > 0) options.max_attempts = args.max_attempts;
  if (args.chaos_fail_rate > 0.0) options.chaos.fail_rate = args.chaos_fail_rate;
  if (args.chaos_hang_rate > 0.0) options.chaos.hang_rate = args.chaos_hang_rate;
  if (args.chaos_seed != 0) options.chaos.seed = args.chaos_seed;
}

/// Maps the ObsArgs live-plane flag onto RunnerOptions: "--listen" starts
/// the runner's embedded /metrics + /status server, with `metrics` (usually
/// the bench's accumulating registry) folded into every /metrics scrape.
/// Absent flag changes nothing — the options stay bit-identical and no
/// server thread exists.
inline void apply_telemetry(const ObsArgs& args, runner::RunnerOptions& options,
                            obs::MetricsRegistry* metrics = nullptr) {
  if (args.listen_addr.empty()) return;
  options.listen_addr = args.listen_addr;
  options.metrics = metrics;
}

/// Sweep-observer-aware overload: additionally serves the observer's merged
/// blame ledgers on the live plane — a /attribution JSON endpoint plus the
/// sim_attr_* families folded into every /metrics scrape. The observer must
/// outlive the runner built from these options (construct it first), since
/// the server thread calls back into it on every scrape.
inline void apply_telemetry(const ObsArgs& args, runner::RunnerOptions& options,
                            obs::MetricsRegistry* metrics, SweepObserver& observer) {
  apply_telemetry(args, options, metrics);
  if (args.listen_addr.empty() || !observer.attribution_enabled()) return;
  options.endpoints.push_back({"/attribution", "application/json",
                               [&observer] { return observer.attribution_json(); }});
  options.scrape_hook = [&observer](obs::MetricsRegistry& registry) {
    observer.publish_attribution(registry);
  };
}

/// Journal input-identity digest for a sweep point, from its human-readable
/// label. The runner folds these into the sweep digest, so a journal written
/// by one bench (or one point layout) is rejected by any other.
[[nodiscard]] inline std::uint64_t label_digest(std::string_view label) {
  util::Fnv1a digest;
  digest.add_text(label);
  return digest.value();
}

/// Journal codec for sweeps whose point function returns a bare double
/// (utilization tables). Encoding uses hexfloat, so decode(encode(v)) == v
/// bit for bit. `identity` labels point i for the input digest.
class DoubleCodec {
 public:
  explicit DoubleCodec(std::function<std::string(std::size_t)> identity)
      : identity_(std::move(identity)) {}

  [[nodiscard]] std::string encode(double v) const {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%a", v);
    return buf;
  }
  [[nodiscard]] double decode(std::string_view text) const {
    return std::strtod(std::string(text).c_str(), nullptr);
  }
  [[nodiscard]] std::uint64_t digest(std::size_t point) const {
    return label_digest(identity_(point));
  }

 private:
  std::function<std::string(std::size_t)> identity_;
};

/// Journal codec for sweeps that keep the whole SimResult per point, backed
/// by the lossless sim::serialize_sim_result round trip.
class SimResultCodec {
 public:
  explicit SimResultCodec(std::function<std::string(std::size_t)> identity)
      : identity_(std::move(identity)) {}

  [[nodiscard]] std::string encode(const sim::SimResult& r) const {
    return sim::serialize_sim_result(r);
  }
  [[nodiscard]] sim::SimResult decode(std::string_view text) const {
    return sim::parse_sim_result(text);
  }
  [[nodiscard]] std::uint64_t digest(std::size_t point) const {
    return label_digest(identity_(point));
  }

 private:
  std::function<std::string(std::size_t)> identity_;
};

/// Runs a sweep through the runner's journal-capable path and returns the
/// values in submission order, like ExperimentRunner::run. When any
/// resilience flag was given, prints a one-line outcome summary (attempts,
/// retries, journal-restored points) after the sweep settles; with no flag
/// the runner takes its legacy path and the printed output is byte-identical
/// to pool.run. Failed points are reported to stderr (with their resilience
/// status) and exit the bench with status 1 instead of throwing out of main.
/// With an observer whose flight ring is armed, the flight dump is written
/// before any failure exit — a sweep that dies of timeouts still leaves its
/// evidence behind — and the same goes for the --attribution ledgers.
template <typename Point, typename Fn, typename Codec>
[[nodiscard]] auto run_sweep(runner::ExperimentRunner& pool, const ResilienceArgs& res,
                             const std::vector<Point>& points, Fn&& fn, const Codec& codec,
                             SweepObserver* obs = nullptr)
    -> std::vector<runner::detail::point_value_t<Fn, Point>> {
  if (obs != nullptr && obs->flight_armed()) pool.note_flight_armed(obs->flight_path());
  auto settled = pool.run_settled(points, std::forward<Fn>(fn), codec);
  if (obs != nullptr && obs->flight_armed()) {
    std::vector<runner::PointOutcome> outcomes;
    outcomes.reserve(settled.size());
    for (const auto& point : settled) outcomes.push_back(point.outcome);
    const std::string dump = obs->dump_flight(outcomes);
    if (!dump.empty()) pool.note_flight_dump(dump);
  }
  if (res.any()) {
    std::int64_t attempts = 0;
    std::int64_t restored = 0;
    std::int64_t failed = 0;
    std::int64_t timed_out = 0;
    for (const auto& point : settled) {
      attempts += point.outcome.attempts;
      restored += point.outcome.from_journal ? 1 : 0;
      failed += point.outcome.status == runner::PointStatus::kFailed ? 1 : 0;
      timed_out += point.outcome.status == runner::PointStatus::kTimedOut ? 1 : 0;
    }
    std::printf("resilience: %zu points, %lld attempts, %lld restored from journal, "
                "%lld failed, %lld timed out\n",
                settled.size(), static_cast<long long>(attempts),
                static_cast<long long>(restored), static_cast<long long>(failed),
                static_cast<long long>(timed_out));
  }
  bool ok = true;
  for (std::size_t i = 0; i < settled.size(); ++i) {
    if (settled[i].ok()) continue;
    ok = false;
    try {
      std::rethrow_exception(settled[i].error);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "sweep point %zu failed (%s, %d attempts): %s\n", i,
                   runner::point_status_name(settled[i].outcome.status),
                   settled[i].outcome.attempts, e.what());
    }
  }
  if (!ok) {
    // The failed sweep still leaves its blame ledgers behind — like the
    // flight dump above, attribution matters most for the run that died.
    if (obs != nullptr) obs->write_attribution_artifact();
    std::exit(1);
  }
  std::vector<runner::detail::point_value_t<Fn, Point>> values;
  values.reserve(settled.size());
  for (auto& point : settled) values.push_back(std::move(*point.value));
  return values;
}

}  // namespace craysim::bench
