// Reproduces the Section 2.2 scheduling rule of thumb:
//
//   "Since there are eight processors, there must be at least eight jobs in
//    memory and ready to run to keep all of the processors busy. In
//    practice, n+1 jobs resident in main memory will keep n processors
//    busy, given a typical supercomputer workload."
//
// "Given a typical supercomputer workload" means mostly-compute jobs with
// modest synchronous I/O (the rule explicitly assumes programs whose data
// arrays fit in memory). We run k such batch jobs on n CPUs sharing one
// cache and disk farm, sweeping k around n. Section 6.2 explains why the
// rule FAILS for identical I/O-intensive jobs — their bursts bunch up — so
// that case is shown too.
#include <cstdio>

#include "bench_common.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"
#include "workload/profiles.hpp"

namespace {

double utilization(std::int32_t cpus, int jobs, bool typical) {
  using namespace craysim;
  // Per-CPU cache share as on the NASA machine (Section 6.2's sizing logic).
  sim::SimParams params = sim::SimParams::paper_main_memory(Bytes{8} * cpus * kMB);
  params.cpu_count = cpus;
  sim::Simulator simulator(params);
  for (int j = 0; j < jobs; ++j) {
    if (typical) {
      simulator.add_app(workload::make_typical_batch_job(j));
    } else {
      simulator.add_app(workload::make_profile(workload::AppId::kCcm,
                                               17 + static_cast<std::uint64_t>(j) * 13));
    }
  }
  return simulator.run().cpu_utilization();
}

}  // namespace

int main() {
  using namespace craysim;
  bench::heading("Section 2.2: n+1 jobs keep n processors busy (typical batch jobs)");

  TextTable table({"CPUs (n)", "util % with n jobs", "with n+1 jobs", "with n+2 jobs"});
  bool rule_holds = true;
  for (const std::int32_t n : {1, 2, 4, 8}) {
    const double u_n = 100.0 * utilization(n, n, true);
    const double u_n1 = 100.0 * utilization(n, n + 1, true);
    const double u_n2 = 100.0 * utilization(n, n + 2, true);
    table.row().integer(n).num(u_n, 1).num(u_n1, 1).num(u_n2, 1);
    // The paper states a rule of thumb, not a number: one spare job should
    // recover most of the idle time the n-job configuration leaves.
    rule_holds &= (u_n1 >= u_n) && (u_n1 > 90.0);
  }
  std::printf("%s", table.render().c_str());
  bench::check(rule_holds,
               "one spare job recovers most idle time (n+1 jobs keep n processors busy)");

  // The counterexample that motivates the whole buffering study: identical
  // I/O-intensive jobs bunch up and break the rule (Sections 2.2 and 6.2).
  const double ccm_n1 = 100.0 * utilization(2, 3, false);
  std::printf("\ncounterexample: 3 x ccm (I/O-intensive, identical) on 2 CPUs: %.1f%%"
              " utilization\n", ccm_n1);
  bench::check(ccm_n1 < 95.0,
               "the rule fails for identical I/O-intensive jobs, motivating Section 6");
  return 0;
}
