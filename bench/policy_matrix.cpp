// Completes the Section 6.2 policy discussion with a full product table:
// every traced application under the four read-ahead x write-behind policy
// combinations in a per-CPU main-memory cache. The paper reports the venus
// and les cases; this sweep shows the pattern holds across the suite —
// write-behind is decisive for write-heavy staging codes, read-ahead for
// sequential readers, and the compulsory-I/O programs don't care.
#include <cstdio>

#include "bench_common.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"
#include "workload/profiles.hpp"

namespace {

double utilization(craysim::workload::AppId app, bool read_ahead, bool write_behind) {
  using namespace craysim;
  sim::SimParams params = sim::SimParams::paper_main_memory(Bytes{16} * kMB);
  params.cache.read_ahead = read_ahead;
  params.cache.write_behind = write_behind;
  sim::Simulator simulator(params);
  simulator.add_app(workload::make_profile(app, 11));
  return simulator.run().cpu_utilization();
}

}  // namespace

int main() {
  using namespace craysim;
  bench::heading("Section 6.2 policy matrix: utilization %, each app alone in a 16 MB cache");

  TextTable table({"app", "RA+WB", "RA only", "WB only", "neither"});
  bool policies_help = true;
  bool les_always_fine = true;
  for (const workload::AppId app : workload::all_apps()) {
    const double both = 100.0 * utilization(app, true, true);
    const double ra = 100.0 * utilization(app, true, false);
    const double wb = 100.0 * utilization(app, false, true);
    const double neither = 100.0 * utilization(app, false, false);
    table.row()
        .cell(std::string(workload::app_name(app)))
        .num(both, 1)
        .num(ra, 1)
        .num(wb, 1)
        .num(neither, 1);
    policies_help &= both + 1e-9 >= neither - 5.0;  // policies never hurt much
    if (app == workload::AppId::kLes) les_always_fine = both > 95.0;
  }
  std::printf("%s", table.render().c_str());
  std::printf("\npaper: venus benefited chiefly from write-behind; les ran with little idle\n"
              "under any policy thanks to its explicit asynchronous I/O; gcm and upw do so\n"
              "little I/O that the policies are irrelevant to them.\n");

  const double venus_both = 100.0 * utilization(workload::AppId::kVenus, true, true);
  const double venus_ra = 100.0 * utilization(workload::AppId::kVenus, true, false);
  const double venus_none = 100.0 * utilization(workload::AppId::kVenus, false, false);
  bench::check(venus_both > 2.0 * venus_ra && venus_both > 3.0 * venus_none,
               "venus benefits strongly from write-behind on top of read-ahead");
  bench::check(les_always_fine, "les stays near fully utilized (explicit async I/O)");
  const double gcm_worst = 100.0 * utilization(workload::AppId::kGcm, false, false);
  const double upw_worst = 100.0 * utilization(workload::AppId::kUpw, false, false);
  bench::check(gcm_worst > 94.0 && upw_worst > 94.0,
               "the compulsory-I/O programs are least sensitive to the cache policies");
  bench::check(policies_help, "enabling both policies never costs meaningful utilization");
  return 0;
}
