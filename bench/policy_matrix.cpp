// Completes the Section 6.2 policy discussion with a full product table:
// every traced application under the four read-ahead x write-behind policy
// combinations in a per-CPU main-memory cache. The paper reports the venus
// and les cases; this sweep shows the pattern holds across the suite —
// write-behind is decisive for write-heavy staging codes, read-ahead for
// sequential readers, and the compulsory-I/O programs don't care.
//
// The 28 independent simulations fan out across the experiment runner (set
// CRAYSIM_RUNNER_THREADS=1 for a serial, byte-identical run).
//
// Telemetry: "--metrics <path>" writes a JSONL snapshot (runner worker
// utilization, phase wall times, and the venus RA+WB point's sim metrics);
// "--perfetto <path>" re-runs that venus point with the span recorder on and
// writes a Chrome trace-event file loadable in Perfetto. "--perfetto-sweep
// <path>" instruments the real 28-point sweep instead — every point records
// into its own SpanRecorder and the merged trace shows all of them as
// labeled process groups; "--timeseries <path>" adds the sim-time counter
// samples as JSONL ("--counter-interval <ms>" tunes the period), and
// "--listen <host:port>" serves live /metrics (Prometheus), /status (JSON
// progress/ETA), and /healthz while the sweep runs. All flags are passive:
// the sweep's table is byte-identical with and without them.
//
// Resilience (docs/RESILIENCE.md): "--journal <path>" checkpoints each
// settled point and resumes a partial sweep byte-identically; "--deadline
// <s>", "--max-attempts <n>", "--chaos-fail <rate>" / "--chaos-hang <rate>"
// / "--chaos-seed <n>" bound, retry, and chaos-test the points. A journaled
// sweep with a deadline also arms the flight recorder: timed-out points
// dump their last span/counter events to <journal>.flight.json. Absent
// flags keep the runner on its legacy bit-identical path.
#include <cstdio>
#include <numeric>
#include <vector>

#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "obs/span.hpp"
#include "runner/runner.hpp"
#include "sim/simulator.hpp"
#include "sweep_obs.hpp"
#include "util/table.hpp"
#include "workload/profiles.hpp"

namespace {

using namespace craysim;

struct PolicyPoint {
  workload::AppId app;
  bool read_ahead = false;
  bool write_behind = false;
};

sim::SimParams point_params(const PolicyPoint& point) {
  sim::SimParams params = sim::SimParams::paper_main_memory(Bytes{16} * kMB);
  params.cache.read_ahead = point.read_ahead;
  params.cache.write_behind = point.write_behind;
  return params;
}

sim::SimResult run_point(const PolicyPoint& point, const sim::SimParams& params) {
  sim::Simulator simulator(params);
  simulator.add_app(workload::make_profile(point.app, 11));
  return simulator.run();
}

std::string point_label(const PolicyPoint& point) {
  std::string label{workload::app_name(point.app)};
  if (point.read_ahead && point.write_behind) return label + " RA+WB";
  if (point.read_ahead) return label + " RA only";
  if (point.write_behind) return label + " WB only";
  return label + " neither";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace craysim;
  const bench::ObsArgs obs_args = bench::ObsArgs::take(argc, argv);
  const bench::ResilienceArgs res_args = bench::ResilienceArgs::take(argc, argv);
  obs::MetricsRegistry registry;
  obs::PhaseProfiler phases;
  bench::heading("Section 6.2 policy matrix: utilization %, each app alone in a 16 MB cache");

  // Policy order per app: RA+WB, RA only, WB only, neither.
  const bool policies[4][2] = {{true, true}, {true, false}, {false, true}, {false, false}};
  const auto apps = workload::all_apps();
  std::vector<PolicyPoint> points;
  for (const workload::AppId app : apps) {
    for (const auto& policy : policies) points.push_back({app, policy[0], policy[1]});
  }

  runner::RunnerOptions runner_options = runner::RunnerOptions::from_env();
  runner_options.collect_telemetry = !obs_args.metrics_path.empty();
  bench::apply_resilience(res_args, runner_options);
  bench::SweepObserver sweep_obs(obs_args, points.size());
  sweep_obs.arm_flight(res_args);
  bench::apply_telemetry(obs_args, runner_options, &registry, sweep_obs);
  runner::ExperimentRunner pool(runner_options);
  std::vector<std::size_t> indices(points.size());
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  const bench::DoubleCodec codec([&](std::size_t i) { return point_label(points[i]); });
  std::vector<double> utils;
  {
    const auto scope = phases.scope("sweep");
    utils = bench::run_sweep(pool, res_args, indices, [&](std::size_t i) {
      sim::SimParams params = point_params(points[i]);
      sweep_obs.instrument(i, point_label(points[i]), params);
      return run_point(points[i], params).cpu_utilization();
    }, codec, &sweep_obs);
  }
  if (!sweep_obs.finish()) return 1;
  const auto util_of = [&](workload::AppId app, std::size_t policy) {
    for (std::size_t a = 0; a < apps.size(); ++a) {
      if (apps[a] == app) return 100.0 * utils[a * 4 + policy];
    }
    return 0.0;
  };

  TextTable table({"app", "RA+WB", "RA only", "WB only", "neither"});
  bool policies_help = true;
  bool les_always_fine = true;
  for (std::size_t a = 0; a < apps.size(); ++a) {
    const double both = 100.0 * utils[a * 4 + 0];
    const double ra = 100.0 * utils[a * 4 + 1];
    const double wb = 100.0 * utils[a * 4 + 2];
    const double neither = 100.0 * utils[a * 4 + 3];
    table.row()
        .cell(std::string(workload::app_name(apps[a])))
        .num(both, 1)
        .num(ra, 1)
        .num(wb, 1)
        .num(neither, 1);
    policies_help &= both + 1e-9 >= neither - 5.0;  // policies never hurt much
    if (apps[a] == workload::AppId::kLes) les_always_fine = both > 95.0;
  }
  std::printf("%s", table.render().c_str());
  std::printf("\npaper: venus benefited chiefly from write-behind; les ran with little idle\n"
              "under any policy thanks to its explicit asynchronous I/O; gcm and upw do so\n"
              "little I/O that the policies are irrelevant to them.\n");

  const double venus_both = util_of(workload::AppId::kVenus, 0);
  const double venus_ra = util_of(workload::AppId::kVenus, 1);
  const double venus_none = util_of(workload::AppId::kVenus, 3);
  bench::check(venus_both > 2.0 * venus_ra && venus_both > 3.0 * venus_none,
               "venus benefits strongly from write-behind on top of read-ahead");
  bench::check(les_always_fine, "les stays near fully utilized (explicit async I/O)");
  const double gcm_worst = util_of(workload::AppId::kGcm, 3);
  const double upw_worst = util_of(workload::AppId::kUpw, 3);
  bench::check(gcm_worst > 94.0 && upw_worst > 94.0,
               "the compulsory-I/O programs are least sensitive to the cache policies");
  bench::check(policies_help, "enabling both policies never costs meaningful utilization");

  if (!obs_args.perfetto_path.empty()) {
    // One instrumented venus RA+WB replay: spans for every process interval,
    // I/O op lifetime, disk access, and cache eviction, viewable in Perfetto.
    const auto scope = phases.scope("perfetto");
    const PolicyPoint venus_point{workload::AppId::kVenus, true, true};
    obs::SpanRecorder spans;
    sim::SimParams params = point_params(venus_point);
    params.spans = &spans;
    (void)run_point(venus_point, params);
    const std::string problem = obs::check_consistency(spans);
    if (!problem.empty()) {
      std::fprintf(stderr, "span consistency check failed: %s\n", problem.c_str());
      return 1;
    }
    spans.save(obs_args.perfetto_path);
    std::printf("\nwrote %zu span events to %s\n", spans.size(), obs_args.perfetto_path.c_str());
  }

  if (!obs_args.metrics_path.empty()) {
    const PolicyPoint venus_point{workload::AppId::kVenus, true, true};
    run_point(venus_point, point_params(venus_point)).publish_metrics(registry, "sim.venus");
    pool.publish_metrics(registry);
    phases.publish_metrics(registry);
    registry.save_jsonl(obs_args.metrics_path);
    std::printf("\nwrote %zu metrics to %s\n", registry.size(), obs_args.metrics_path.c_str());
  }
  return 0;
}
