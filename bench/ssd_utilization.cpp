// Reproduces the Section 6.3 SSD result: with a 32 MW (256 MB) per-CPU SSD
// share used as a system-managed cache, every traced application except one
// utilizes the CPU over 99% — one or two jobs suffice per processor.
//
// The paper's exception is the application whose working set/request mix
// still forces disk waits; with our calibration that role falls to the
// straight-to-disk-scale app with the largest uncached footprint.
#include <cstdio>

#include "bench_common.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"
#include "workload/profiles.hpp"

int main() {
  using namespace craysim;
  bench::heading("Section 6.3: per-application CPU utilization with a 256 MB SSD cache");

  TextTable table({"app", "alone util %", "idle s", "2 copies util %", "idle s (2)"});
  int above_99 = 0;
  int total = 0;
  for (const workload::AppId app : workload::all_apps()) {
    sim::Simulator solo(sim::SimParams::paper_ssd(Bytes{256} * kMB));
    solo.add_app(workload::make_profile(app, 11));
    const auto r1 = solo.run();

    sim::Simulator duo(sim::SimParams::paper_ssd(Bytes{256} * kMB));
    duo.add_app(workload::make_profile(app, 11));
    duo.add_app(workload::make_profile(app, 22));
    const auto r2 = duo.run();

    table.row()
        .cell(std::string(workload::app_name(app)))
        .num(100.0 * r1.cpu_utilization(), 2)
        .num(r1.idle_time().seconds(), 1)
        .num(100.0 * r2.cpu_utilization(), 2)
        .num(r2.idle_time().seconds(), 1);
    ++total;
    if (r1.cpu_utilization() > 0.99) ++above_99;
  }
  std::printf("%s", table.render().c_str());
  std::printf("%d of %d applications exceed 99%% utilization running alone "
              "(paper: all but one)\n", above_99, total);

  bench::check(above_99 >= total - 1,
               "all applications but at most one exceed 99% CPU utilization on the SSD");
  return 0;
}
