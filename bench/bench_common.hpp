// Shared helpers for the table/figure reproduction benches.
#pragma once

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <span>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/ascii_plot.hpp"
#include "util/atomic_file.hpp"
#include "util/table.hpp"

namespace craysim::bench {

/// Installs SIGINT/SIGTERM handlers that flush stdio and re-raise with the
/// default disposition, so an interrupted bench's partial console output
/// (tables, CSV) survives in pipes/log files while the exit status still
/// reports the signal. Telemetry artifacts need no handler: every save goes
/// through util::write_file_atomic, so an interruption can only ever leave
/// the previous complete file, never a truncated one. Idempotent.
inline void install_signal_flush_hooks() {
  static const auto handler = +[](int sig) {
    std::fflush(nullptr);  // async-signal-unsafe in general; acceptable for a dying bench
    std::signal(sig, SIG_DFL);
    std::raise(sig);
  };
  std::signal(SIGINT, handler);
  std::signal(SIGTERM, handler);
}

inline void heading(const std::string& title) {
  std::printf("\n================================================================\n%s\n"
              "================================================================\n",
              title.c_str());
}

/// Prints a rate series as an ASCII plot (MB/s) followed by its CSV dump.
inline void print_rate_figure(std::span<const double> bytes_per_s, const std::string& y_label,
                              const std::string& x_label, double bin_seconds,
                              bool emit_csv = true) {
  std::vector<double> mb_per_s(bytes_per_s.size());
  for (std::size_t i = 0; i < bytes_per_s.size(); ++i) mb_per_s[i] = bytes_per_s[i] / 1e6;
  PlotOptions options;
  options.y_label = y_label;
  options.x_label = x_label;
  options.x_scale = bin_seconds;
  options.height = 16;
  std::printf("%s", ascii_plot(mb_per_s, options).c_str());
  if (emit_csv) {
    std::printf("--- CSV ---\n%s--- end CSV ---\n",
                series_csv(mb_per_s, bin_seconds, x_label, y_label).c_str());
  }
}

inline void check(bool condition, const std::string& claim) {
  std::printf("[%s] %s\n", condition ? "REPRODUCED" : "DIVERGED", claim.c_str());
}

/// Consumes a "<flag> <value>" pair from the argument list (any position) and
/// returns the value, or "" when the flag is absent. The remaining arguments
/// are compacted so downstream parsers (e.g. google-benchmark's) never see
/// the flag.
inline std::string take_value_arg(int& argc, char** argv, std::string_view flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string_view(argv[i]) == flag) {
      std::string value = argv[i + 1];
      for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      argv[argc] = nullptr;  // preserve the argv[argc] == nullptr convention
      return value;
    }
  }
  return {};
}

/// Consumes a "--json <path>" pair (the micro-bench snapshot destination).
inline std::string take_json_arg(int& argc, char** argv) {
  return take_value_arg(argc, argv, "--json");
}

/// Telemetry destinations shared by the instrumented benches and examples:
/// "--metrics <path>" names a metrics-snapshot JSONL file, "--perfetto
/// <path>" a single-point Chrome trace-event JSON file, "--perfetto-sweep
/// <path>" a merged multi-point trace (every sweep point as its own labeled
/// Perfetto process group), "--timeseries <path>" the counter samples as
/// JSONL, and "--counter-interval <ms>" the sim-time sampling period. Any
/// may be absent (empty path = that sink is off). Parsing only — the caller
/// owns the obs:: objects (see SweepObserver in sweep_obs.hpp for the
/// sweep-scale ones).
struct ObsArgs {
  std::string metrics_path;
  std::string perfetto_path;
  std::string perfetto_sweep_path;
  std::string timeseries_path;
  double counter_interval_ms = 0.0;  ///< 0 = SweepObserver's default
  std::string listen_addr;  ///< "--listen host:port": live /metrics + /status server
  std::string attribution_path;  ///< "--attribution <path>": per-point attribution JSONL
  std::size_t attr_top = 10;     ///< "--top <n>": rows per hotspot table

  /// Did the user ask for any per-sweep-point recording?
  [[nodiscard]] bool sweep_telemetry() const {
    return !perfetto_sweep_path.empty() || !timeseries_path.empty();
  }

  /// Did the user ask for latency attribution (--attribution, or a live
  /// server whose /attribution endpoint should have data)?
  [[nodiscard]] bool attribution() const {
    return !attribution_path.empty() || !listen_addr.empty();
  }

  [[nodiscard]] static ObsArgs take(int& argc, char** argv) {
    // Every telemetered bench passes through here, so this is the one spot
    // to arm the interrupted-run flush behavior.
    install_signal_flush_hooks();
    ObsArgs args;
    args.metrics_path = take_value_arg(argc, argv, "--metrics");
    args.perfetto_path = take_value_arg(argc, argv, "--perfetto");
    args.perfetto_sweep_path = take_value_arg(argc, argv, "--perfetto-sweep");
    args.timeseries_path = take_value_arg(argc, argv, "--timeseries");
    args.listen_addr = take_value_arg(argc, argv, "--listen");
    args.attribution_path = take_value_arg(argc, argv, "--attribution");
    const std::string top = take_value_arg(argc, argv, "--top");
    if (!top.empty()) args.attr_top = static_cast<std::size_t>(std::stoul(top));
    const std::string interval = take_value_arg(argc, argv, "--counter-interval");
    if (!interval.empty()) args.counter_interval_ms = std::stod(interval);
    return args;
  }
};

/// Resilience knobs shared by every sweep bench (docs/RESILIENCE.md):
/// "--journal <path>" checkpoints each settled point and resumes a partial
/// sweep, "--deadline <seconds>" bounds each point with a cooperative
/// deadline, "--max-attempts <n>" retries failed/timed-out points with
/// deterministic backoff, and "--chaos-fail <rate>" / "--chaos-hang <rate>"
/// / "--chaos-seed <n>" inject synthetic point failures or deadline-length
/// hangs (drills; a hang requires "--deadline"). All absent by default, in
/// which case the runner takes its legacy bit-identical path.
struct ResilienceArgs {
  std::string journal_path;
  double deadline_s = 0.0;
  int max_attempts = 0;  ///< 0 = runner default (no retries)
  double chaos_fail_rate = 0.0;
  double chaos_hang_rate = 0.0;
  std::uint64_t chaos_seed = 0;  ///< 0 = plan default

  [[nodiscard]] bool any() const {
    return !journal_path.empty() || deadline_s > 0.0 || max_attempts > 0 ||
           chaos_fail_rate > 0.0 || chaos_hang_rate > 0.0;
  }

  [[nodiscard]] static ResilienceArgs take(int& argc, char** argv) {
    ResilienceArgs args;
    args.journal_path = take_value_arg(argc, argv, "--journal");
    const std::string deadline = take_value_arg(argc, argv, "--deadline");
    if (!deadline.empty()) args.deadline_s = std::stod(deadline);
    const std::string attempts = take_value_arg(argc, argv, "--max-attempts");
    if (!attempts.empty()) args.max_attempts = std::stoi(attempts);
    const std::string fail = take_value_arg(argc, argv, "--chaos-fail");
    if (!fail.empty()) args.chaos_fail_rate = std::stod(fail);
    const std::string hang = take_value_arg(argc, argv, "--chaos-hang");
    if (!hang.empty()) args.chaos_hang_rate = std::stod(hang);
    const std::string seed = take_value_arg(argc, argv, "--chaos-seed");
    if (!seed.empty()) args.chaos_seed = std::stoull(seed);
    return args;
  }
};

/// Replaces-or-appends one named section of a flat metrics JSON file, e.g.
///   { "codec": { "BM_Decode_ns_per_op": 1234.5 }, "cache": { ... } }
/// Different benches each own one section of the same file (BENCH_micro.json)
/// and may run in any order. The parser only understands files this helper
/// wrote: top-level sections whose bodies are flat (no nested braces).
inline void write_json_section(const std::string& path, const std::string& section,
                               const std::vector<std::pair<std::string, double>>& values) {
  std::vector<std::pair<std::string, std::string>> sections;
  if (std::ifstream in{path}) {
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    std::size_t pos = text.find('{');  // skip the outer brace
    while (pos != std::string::npos) {
      const std::size_t name_start = text.find('"', pos + 1);
      if (name_start == std::string::npos) break;
      const std::size_t name_end = text.find('"', name_start + 1);
      const std::size_t body_start = text.find('{', name_end);
      if (name_end == std::string::npos || body_start == std::string::npos) break;
      const std::size_t body_end = text.find('}', body_start);
      if (body_end == std::string::npos) break;
      sections.emplace_back(text.substr(name_start + 1, name_end - name_start - 1),
                            text.substr(body_start + 1, body_end - body_start - 1));
      pos = body_end;
    }
  }

  std::string body;
  for (std::size_t i = 0; i < values.size(); ++i) {
    char number[64];
    std::snprintf(number, sizeof number, "%.6g", values[i].second);
    body += "\n    \"" + values[i].first + "\": " + number;
    if (i + 1 < values.size()) body += ",";
  }
  body += "\n  ";

  bool replaced = false;
  for (auto& existing : sections) {
    if (existing.first == section) {
      existing.second = body;
      replaced = true;
    }
  }
  if (!replaced) sections.emplace_back(section, body);

  std::string out = "{\n";
  for (std::size_t i = 0; i < sections.size(); ++i) {
    out += "  \"" + sections[i].first + "\": {" + sections[i].second + "}";
    out += (i + 1 < sections.size() ? ",\n" : "\n");
  }
  out += "}\n";
  // Atomic replace: a bench killed mid-write can't corrupt the sections the
  // other benches already contributed.
  util::write_file_atomic(path, out);
}

}  // namespace craysim::bench
