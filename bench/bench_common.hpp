// Shared helpers for the table/figure reproduction benches.
#pragma once

#include <cstdio>
#include <span>
#include <string>

#include "util/ascii_plot.hpp"
#include "util/table.hpp"

namespace craysim::bench {

inline void heading(const std::string& title) {
  std::printf("\n================================================================\n%s\n"
              "================================================================\n",
              title.c_str());
}

/// Prints a rate series as an ASCII plot (MB/s) followed by its CSV dump.
inline void print_rate_figure(std::span<const double> bytes_per_s, const std::string& y_label,
                              const std::string& x_label, double bin_seconds,
                              bool emit_csv = true) {
  std::vector<double> mb_per_s(bytes_per_s.size());
  for (std::size_t i = 0; i < bytes_per_s.size(); ++i) mb_per_s[i] = bytes_per_s[i] / 1e6;
  PlotOptions options;
  options.y_label = y_label;
  options.x_label = x_label;
  options.x_scale = bin_seconds;
  options.height = 16;
  std::printf("%s", ascii_plot(mb_per_s, options).c_str());
  if (emit_csv) {
    std::printf("--- CSV ---\n%s--- end CSV ---\n",
                series_csv(mb_per_s, bin_seconds, x_label, y_label).c_str());
  }
}

inline void check(bool condition, const std::string& claim) {
  std::printf("[%s] %s\n", condition ? "REPRODUCED" : "DIVERGED", claim.c_str());
}

}  // namespace craysim::bench
