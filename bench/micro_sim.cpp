// Microbenchmarks: simulator event throughput and file-system translation.
#include <benchmark/benchmark.h>

#include "micro_common.hpp"

#include "fs/file_system.hpp"
#include "sim/simulator.hpp"
#include "workload/profiles.hpp"

namespace {

using namespace craysim;

void BM_SimulateVenusPairSsd(benchmark::State& state) {
  std::int64_t ios = 0;
  for (auto _ : state) {
    sim::Simulator simulator(sim::SimParams::paper_ssd(Bytes{256} * kMB));
    simulator.add_app(workload::make_profile(workload::AppId::kVenus, 11));
    simulator.add_app(workload::make_profile(workload::AppId::kVenus, 22));
    const auto result = simulator.run();
    benchmark::DoNotOptimize(&result);
    for (const auto& p : result.processes) ios += p.io_count;
  }
  state.SetItemsProcessed(ios);
}
BENCHMARK(BM_SimulateVenusPairSsd)->Unit(benchmark::kMillisecond);

void BM_SimulateCcmNoCache(benchmark::State& state) {
  std::int64_t ios = 0;
  for (auto _ : state) {
    sim::Simulator simulator(sim::SimParams::no_cache());
    simulator.add_app(workload::make_profile(workload::AppId::kCcm, 7));
    const auto result = simulator.run();
    benchmark::DoNotOptimize(&result);
    for (const auto& p : result.processes) ios += p.io_count;
  }
  state.SetItemsProcessed(ios);
}
BENCHMARK(BM_SimulateCcmNoCache)->Unit(benchmark::kMillisecond);

void BM_FsTranslate(benchmark::State& state) {
  fs::FileSystem filesystem(fs::DiskLayout::uniform(8, Bytes{512} * kMB));
  const auto file = filesystem.create("bench-file");
  filesystem.ensure_allocated(file, 0, Bytes{256} * kMB);
  std::int64_t ops = 0;
  Bytes offset = 0;
  for (auto _ : state) {
    const auto ranges = filesystem.translate(file, offset, 512 * kKiB);
    benchmark::DoNotOptimize(ranges.data());
    offset = (offset + 512 * kKiB) % (Bytes{255} * kMB);
    ++ops;
  }
  state.SetItemsProcessed(ops);
}
BENCHMARK(BM_FsTranslate);

}  // namespace

int main(int argc, char** argv) {
  return craysim::bench::run_micro_main(argc, argv, "sim");
}
