// Reproduces Figure 3: data rate over process CPU time for venus.
//
// The paper's plot shows regular bursts reaching ~100 MB per CPU second,
// evenly spaced over the 379 s run, around a ~44 MB/s mean (the figure's
// dashed line sits at 41.1 for the window shown).
#include <algorithm>
#include <cstdio>

#include "analysis/series.hpp"
#include "bench_common.hpp"
#include "util/stats.hpp"
#include "workload/profiles.hpp"
#include "workload/trace_gen.hpp"

int main() {
  using namespace craysim;
  bench::heading("Figure 3: Data rate over time for venus (MB per CPU second)");

  const auto profile = workload::make_profile(workload::AppId::kVenus);
  const auto trace = workload::synthesize_trace(profile);
  const BinnedSeries series = analysis::cpu_time_rate_series(trace);
  const auto rates = series.rates();
  bench::print_rate_figure(rates, "MB/s", "process CPU seconds", series.bin_width().seconds());

  std::vector<double> mb(rates.size());
  for (std::size_t i = 0; i < rates.size(); ++i) mb[i] = rates[i] / 1e6;
  const double mean = mean_of(mb);
  const double peak = *std::max_element(mb.begin(), mb.end());
  std::printf("mean %.1f MB/s (paper ~44.1), peak %.1f MB/s (paper ~100), peak/mean %.2f\n",
              mean, peak, analysis::peak_to_mean(mb));

  bench::check(mean > 35 && mean < 55, "mean data rate ~44 MB per CPU second");
  bench::check(peak > 70 && peak < 140, "bursts reach ~100 MB per CPU second");
  bench::check(analysis::peak_to_mean(mb) > 1.5, "demand is bursty, not smooth");
  return 0;
}
