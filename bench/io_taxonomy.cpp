// Reproduces the Section 5.1 taxonomy arithmetic and the Section 1 Amdahl
// balance discussion:
//  * required I/O example: 50 MB in + 100 MB out over 200 s -> 0.75 MB/s;
//  * checkpoint example: 40 MB of state every 20 CPU-seconds -> 2 MB/s;
//  * data-swapping example: 3 words (24 B) per 200 FLOPs on a 200 MFLOPS
//    processor -> ~24-25 MB/s, essentially Amdahl's 1 Mbit/s per MIPS;
// then classifies each traced application and reports its Amdahl ratio.
#include <cmath>
#include <cstdio>

#include "analysis/taxonomy.hpp"
#include "bench_common.hpp"
#include "trace/stats.hpp"
#include "util/table.hpp"
#include "workload/profiles.hpp"
#include "workload/trace_gen.hpp"

int main() {
  using namespace craysim;
  bench::heading("Section 5.1 / Section 1: I/O classes and the Amdahl balance metric");

  const double required = analysis::required_io_mb_s(Bytes{50} * kMB, Bytes{100} * kMB,
                                                     Ticks::from_seconds(200));
  const double checkpoint =
      analysis::checkpoint_mb_s(Bytes{40} * kMB, Ticks::from_seconds(20));
  const double swap = analysis::swap_mb_s(24.0, 200.0, 200.0);
  std::printf("worked examples (paper / computed):\n");
  std::printf("  required I/O    0.75 / %.2f MB/s\n", required);
  std::printf("  checkpointing   2    / %.2f MB/s\n", checkpoint);
  std::printf("  data swapping   ~25  / %.2f MB/s\n", swap);
  std::printf("  Amdahl check: 24 B per 200 FLOP = %.0f bits per 200 FLOP (metric wants 200)\n\n",
              24.0 * 8);

  // Per-application classification and balance on a 167 MIPS Y-MP CPU.
  const double mips = 167.0;
  TextTable table({"app", "MB/s", "class", "Amdahl Mbit/s per MIPS"});
  int swapping = 0;
  int required_only = 0;
  for (const workload::AppId app : workload::all_apps()) {
    const auto trace = workload::synthesize_trace(workload::make_profile(app));
    const auto stats = trace::compute_stats(trace);
    const auto io_class = analysis::classify_io(stats);
    table.row()
        .cell(std::string(workload::app_name(app)))
        .num(stats.mb_per_cpu_second(), 2)
        .cell(analysis::to_string(io_class))
        .num(analysis::amdahl_ratio(stats.mb_per_cpu_second(), mips), 3);
    if (io_class == analysis::IoClass3::kDataSwapping) ++swapping;
    if (io_class == analysis::IoClass3::kRequiredOnly) ++required_only;
  }
  std::printf("%s", table.render().c_str());

  bench::check(std::abs(required - 0.75) < 1e-9, "required-I/O example computes to 0.75 MB/s");
  bench::check(std::abs(checkpoint - 2.0) < 1e-9, "checkpoint example computes to 2 MB/s");
  bench::check(swap > 23.0 && swap < 26.0, "data-swapping example computes to ~24-25 MB/s");
  bench::check(swapping == 5 && required_only == 2,
               "five applications swap data each iteration; gcm and upw do only required I/O");
  return 0;
}
