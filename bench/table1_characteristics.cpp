// Reproduces Table 1: characteristics of the traced applications.
//
// The paper gathered these numbers from library-level traces of seven
// production codes on Cray Y-MPs; we regenerate them from the calibrated
// synthetic models. Cells read "paper / measured (delta%)".
#include <cstdio>

#include "analysis/tables.hpp"
#include "bench_common.hpp"
#include "trace/stats.hpp"
#include "workload/profiles.hpp"
#include "workload/trace_gen.hpp"

int main() {
  using namespace craysim;
  bench::heading("Table 1: Characteristics of the traced applications");

  std::vector<analysis::AppMeasurement> measurements;
  for (const workload::AppId app : workload::all_apps()) {
    const auto profile = workload::make_profile(app);
    const auto trace = workload::synthesize_trace(profile);
    measurements.push_back({app, trace::compute_stats(trace)});
  }
  const TextTable table = analysis::build_table1(measurements);
  std::printf("%s", table.render().c_str());

  // Headline sanity: every application's aggregate data rate within 15% of
  // the published value (gcm/upw have sub-MB/s rates where the scan's
  // precision is the limit; they get an absolute tolerance instead).
  bool all_ok = true;
  for (const auto& m : measurements) {
    const auto& paper = workload::paper_stats(m.app);
    const double measured = m.stats.mb_per_cpu_second();
    const bool ok = paper.mb_per_s > 1.0
                        ? std::abs(measured - paper.mb_per_s) / paper.mb_per_s < 0.15
                        : std::abs(measured - paper.mb_per_s) < 0.05;
    if (!ok) {
      std::printf("  !! %s: MB/s paper %.3f vs measured %.3f\n", paper.name.data(),
                  paper.mb_per_s, measured);
      all_ok = false;
    }
  }
  bench::check(all_ok, "per-application aggregate data rates match Table 1");
  return all_ok ? 0 : 1;
}
