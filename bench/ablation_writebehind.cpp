// Ablation for the Section 6.2 write-behind claim:
// "writebehind reduced idle time from 211 seconds to 1 second for a
//  simulation of two identical copies of venus running with a 128 MB cache."
// Also ablates read-ahead, since the section credits both techniques.
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "runner/runner.hpp"
#include "sim/simulator.hpp"
#include "sweep_obs.hpp"
#include "util/table.hpp"
#include "workload/profiles.hpp"

namespace {

struct PolicyPoint {
  bool write_behind = false;
  bool read_ahead = false;
};

craysim::sim::SimParams point_params(const PolicyPoint& point) {
  using namespace craysim;
  sim::SimParams params = sim::SimParams::paper_ssd(Bytes{128} * kMB);
  params.cache.write_behind = point.write_behind;
  params.cache.read_ahead = point.read_ahead;
  return params;
}

craysim::sim::SimResult run_with(const craysim::sim::SimParams& params) {
  using namespace craysim;
  sim::Simulator simulator(params);
  simulator.add_app(workload::make_profile(workload::AppId::kVenus, 11));
  simulator.add_app(workload::make_profile(workload::AppId::kVenus, 22));
  return simulator.run();
}

std::string point_label(const PolicyPoint& point) {
  return std::string("WB ") + (point.write_behind ? "on" : "off") + ", RA " +
         (point.read_ahead ? "on" : "off");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace craysim;
  const bench::ObsArgs obs_args = bench::ObsArgs::take(argc, argv);
  const bench::ResilienceArgs res_args = bench::ResilienceArgs::take(argc, argv);
  bench::heading("Ablation: write-behind and read-ahead (2 x venus, 128 MB cache)");

  std::vector<PolicyPoint> points;
  for (const bool wb : {true, false}) {
    for (const bool ra : {true, false}) points.push_back({wb, ra});
  }
  runner::RunnerOptions runner_options = runner::RunnerOptions::from_env();
  runner_options.collect_telemetry = !obs_args.metrics_path.empty();
  bench::apply_resilience(res_args, runner_options);
  bench::SweepObserver sweep_obs(obs_args, points.size());
  sweep_obs.arm_flight(res_args);
  bench::apply_telemetry(obs_args, runner_options, nullptr, sweep_obs);
  runner::ExperimentRunner pool(runner_options);
  std::vector<std::size_t> indices(points.size());
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  const bench::SimResultCodec codec([&](std::size_t i) { return point_label(points[i]); });
  const auto results = bench::run_sweep(pool, res_args, indices, [&](std::size_t i) {
    sim::SimParams params = point_params(points[i]);
    sweep_obs.instrument(i, point_label(points[i]), params);
    return run_with(params);
  }, codec, &sweep_obs);

  TextTable table({"write-behind", "read-ahead", "idle s", "wall s", "utilization %"});
  double idle_wb = 0;
  double idle_no_wb = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& [wb, ra] = points[i];
    const auto& r = results[i];
    table.row()
        .cell(wb ? "on" : "off")
        .cell(ra ? "on" : "off")
        .num(r.idle_time().seconds(), 1)
        .num(r.total_wall.seconds(), 1)
        .num(100.0 * r.cpu_utilization(), 1);
    if (wb && ra) idle_wb = r.idle_time().seconds();
    if (!wb && ra) idle_no_wb = r.idle_time().seconds();
  }
  std::printf("%s", table.render().c_str());
  std::printf("paper: write-behind cut idle time from 211 s to ~1 s in this configuration\n");

  bench::check(idle_wb < 10.0, "with write-behind, idle time is near zero");
  bench::check(idle_no_wb > 100.0, "without write-behind, idle time is in the hundreds of seconds");
  bench::check(idle_no_wb / std::max(idle_wb, 0.5) > 20.0,
               "write-behind removes the overwhelming majority of idle time");

  if (!sweep_obs.finish()) return 1;
  if (!bench::write_point_trace(obs_args, point_params(points[0]),
                                [](const sim::SimParams& p) { (void)run_with(p); })) {
    return 1;
  }
  if (!obs_args.metrics_path.empty()) {
    obs::MetricsRegistry registry;
    results[0].publish_metrics(registry, "sim");
    pool.publish_metrics(registry);
    registry.save_jsonl(obs_args.metrics_path);
    std::printf("wrote %zu metrics to %s\n", registry.size(), obs_args.metrics_path.c_str());
  }
  return 0;
}
