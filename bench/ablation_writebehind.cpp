// Ablation for the Section 6.2 write-behind claim:
// "writebehind reduced idle time from 211 seconds to 1 second for a
//  simulation of two identical copies of venus running with a 128 MB cache."
// Also ablates read-ahead, since the section credits both techniques.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "runner/runner.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"
#include "workload/profiles.hpp"

namespace {

struct PolicyPoint {
  bool write_behind = false;
  bool read_ahead = false;
};

craysim::sim::SimResult run_config(const PolicyPoint& point) {
  using namespace craysim;
  sim::SimParams params = sim::SimParams::paper_ssd(Bytes{128} * kMB);
  params.cache.write_behind = point.write_behind;
  params.cache.read_ahead = point.read_ahead;
  sim::Simulator simulator(params);
  simulator.add_app(workload::make_profile(workload::AppId::kVenus, 11));
  simulator.add_app(workload::make_profile(workload::AppId::kVenus, 22));
  return simulator.run();
}

}  // namespace

int main() {
  using namespace craysim;
  bench::heading("Ablation: write-behind and read-ahead (2 x venus, 128 MB cache)");

  std::vector<PolicyPoint> points;
  for (const bool wb : {true, false}) {
    for (const bool ra : {true, false}) points.push_back({wb, ra});
  }
  runner::ExperimentRunner pool;
  const auto results = pool.run(points, run_config);

  TextTable table({"write-behind", "read-ahead", "idle s", "wall s", "utilization %"});
  double idle_wb = 0;
  double idle_no_wb = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& [wb, ra] = points[i];
    const auto& r = results[i];
    table.row()
        .cell(wb ? "on" : "off")
        .cell(ra ? "on" : "off")
        .num(r.idle_time().seconds(), 1)
        .num(r.total_wall.seconds(), 1)
        .num(100.0 * r.cpu_utilization(), 1);
    if (wb && ra) idle_wb = r.idle_time().seconds();
    if (!wb && ra) idle_no_wb = r.idle_time().seconds();
  }
  std::printf("%s", table.render().c_str());
  std::printf("paper: write-behind cut idle time from 211 s to ~1 s in this configuration\n");

  bench::check(idle_wb < 10.0, "with write-behind, idle time is near zero");
  bench::check(idle_no_wb > 100.0, "without write-behind, idle time is in the hundreds of seconds");
  bench::check(idle_no_wb / std::max(idle_wb, 0.5) > 20.0,
               "write-behind removes the overwhelming majority of idle time");
  return 0;
}
