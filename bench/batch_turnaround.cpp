// Reproduces the Section 2.2 batch-scheduling observation that explains
// venus's design:
//
//   "for a given amount of CPU time required by an application, turnaround
//    time is shortest for the application which requires the least main
//    memory. Programmers take advantage of this by structuring their
//    program to use smaller in-memory data structures while staging data
//    to/from SSD or disk."
//
// Same 379 CPU-second job (venus), submitted to a busy 8-CPU / 1 GB machine
// at several memory footprints.
#include <cstdio>

#include "batch/batch.hpp"
#include "bench_common.hpp"
#include "util/table.hpp"

namespace {

using namespace craysim;

batch::BatchSystem busy_machine() {
  std::vector<batch::QueueConfig> queues = {
      {"small", Bytes{128} * kMB, Ticks::from_seconds(3600), Bytes{384} * kMB},
      {"large", Bytes{640} * kMB, Ticks::from_seconds(14400), Bytes{640} * kMB},
  };
  batch::BatchSystem system(8, Bytes{1024} * kMB, std::move(queues));
  // Steady background: big long-running jobs keep the large queue saturated,
  // small jobs churn through the small queue.
  for (int i = 0; i < 6; ++i) {
    batch::JobSpec bg;
    bg.name = "bg-large-" + std::to_string(i);
    bg.memory = Bytes{512} * kMB;
    bg.cpu_time = Ticks::from_seconds(2000);
    system.submit(bg);
  }
  for (int i = 0; i < 6; ++i) {
    batch::JobSpec bg;
    bg.name = "bg-small-" + std::to_string(i);
    bg.memory = Bytes{96} * kMB;
    bg.cpu_time = Ticks::from_seconds(300);
    system.submit(bg);
  }
  return system;
}

batch::JobResult run_venus_variant(Bytes memory) {
  auto system = busy_machine();
  batch::JobSpec venus;
  venus.name = "venus";
  venus.memory = memory;
  venus.cpu_time = Ticks::from_seconds(379);
  venus.submit_time = Ticks::from_seconds(10);
  system.submit(venus);
  return *system.run().find("venus");
}

}  // namespace

int main() {
  using namespace craysim;
  bench::heading("Section 2.2: batch turnaround vs memory footprint (the venus trade)");

  TextTable table({"venus memory MB", "queue", "wait s", "turnaround s"});
  const Bytes footprints[] = {32, 64, 128, 320, 600};
  double small_ta = 0;
  double large_ta = 0;
  for (const Bytes mb : footprints) {
    const auto r = run_venus_variant(mb * kMB);
    table.row()
        .integer(mb)
        .cell(r.queue)
        .num(r.wait_time().seconds(), 1)
        .num(r.turnaround().seconds(), 1);
    if (mb == 32) small_ta = r.turnaround().seconds();
    if (mb == 600) large_ta = r.turnaround().seconds();
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nThe 379 CPU-second job is identical in every row; only its memory request\n"
              "changes. Small-memory versions land in the fast small queue — which is why\n"
              "venus's author chose a tiny in-memory array and staged the rest through the\n"
              "file system, creating exactly the I/O load Sections 5-6 study.\n");

  bench::check(small_ta < large_ta / 1.5,
               "the small-memory variant turns around much faster on a busy machine");
  return 0;
}
