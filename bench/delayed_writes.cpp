// Tests the Section 2.1 / 6.2 delayed-write argument from both sides.
//
// Sprite delays writes 30-60 s so that short-lived temporary files (compiler
// intermediates) die in the cache and never reach disk. The paper argues
// this buys little on a supercomputer: "most data written to a
// supercomputer's main memory file cache must go to disk because iterations
// take hundreds of seconds and files are hundreds of megabytes long."
//
// Part 1 recreates the workstation case with a compiler-like temp-file
// workload driven straight at the buffer cache. Part 2 runs venus in a
// small main-memory cache under increasing delayed-write ages.
#include <cstdio>

#include "bench_common.hpp"
#include "sim/cache.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"
#include "workload/profiles.hpp"

namespace {

using namespace craysim;

/// Workstation-style workload: `files` temporary files of `size` each are
/// written and then deleted `lifetime` later. Returns the fraction of dirty
/// blocks that never reached disk under the given delay threshold.
double temp_file_absorption(Ticks delay, Ticks lifetime, int sync_every_steps) {
  sim::CacheParams params;
  params.capacity = Bytes{64} * kMB;
  params.block_size = 4 * kKiB;
  sim::CacheMetrics metrics;
  sim::BufferCache cache(params, metrics);
  const Bytes size = 256 * kKiB;
  const int files = 200;
  const Ticks spacing = Ticks::from_seconds(1);

  Ticks clock;
  std::int64_t flushed_blocks = 0;
  std::int64_t written_blocks = 0;
  std::uint64_t op = 1;
  std::int64_t deleted = 0;
  for (int step = 0; step < files * 3; ++step) {
    clock += spacing;
    // Periodic sync: flush blocks older than `delay`. Prompt write-behind
    // syncs every second; Sprite syncs every 30 s.
    if (step % sync_every_steps == sync_every_steps - 1) {
      for (const auto& run : cache.collect_flush_batch(1 << 20, 0, clock, delay)) {
        flushed_blocks += run.count;
        cache.flush_complete(run);
      }
    }
    if (step < files) {
      const auto file = static_cast<std::uint32_t>(step + 1);
      const auto plan = cache.plan_write(1, file, 0, size, op++, /*write_behind=*/true, clock);
      (void)plan;
      written_blocks += size / params.block_size;
    }
    // Delete each file `lifetime` after it was written.
    const std::int64_t due = step - lifetime / spacing;
    if (due >= 0 && due < files) {
      (void)cache.invalidate_file(static_cast<std::uint32_t>(due + 1));
      ++deleted;
    }
  }
  // Final sync of whatever survived.
  for (const auto& run : cache.collect_flush_batch(1 << 20, 0, clock, Ticks::zero())) {
    flushed_blocks += run.count;
    cache.flush_complete(run);
  }
  return 1.0 - static_cast<double>(flushed_blocks) / static_cast<double>(written_blocks);
}

Bytes venus_disk_writes(Ticks delay) {
  sim::SimParams params = sim::SimParams::paper_main_memory(Bytes{16} * kMB);
  params.cache.delayed_write_age = delay;
  sim::Simulator simulator(params);
  simulator.add_app(workload::make_profile(workload::AppId::kVenus, 11));
  return simulator.run().disk.bytes_written;
}

}  // namespace

int main() {
  bench::heading("Sections 2.1/6.2: what delayed writes buy — workstations vs supercomputers");

  std::printf("Part 1: compiler-style temp files (256 KB each, deleted 10 s after creation),\n"
              "        periodic 30 s sync, varying delayed-write age:\n\n");
  TextTable t1({"delay s", "writes absorbed %"});
  const double absorbed_0 =
      temp_file_absorption(Ticks::zero(), Ticks::from_seconds(10), /*sync_every_steps=*/1);
  const double absorbed_30 = temp_file_absorption(Ticks::from_seconds(30),
                                                  Ticks::from_seconds(10), /*sync=*/30);
  t1.row().integer(0).num(100.0 * absorbed_0, 1);
  t1.row().integer(30).num(100.0 * absorbed_30, 1);
  std::printf("%s\n", t1.render().c_str());

  std::printf("Part 2: venus in a 16 MB main-memory cache — disk write traffic vs delay:\n\n");
  TextTable t2({"delay s", "bytes written to disk MB"});
  const Bytes w0 = venus_disk_writes(Ticks::zero());
  const Bytes w5 = venus_disk_writes(Ticks::from_seconds(5));
  const Bytes w30 = venus_disk_writes(Ticks::from_seconds(30));
  t2.row().integer(0).num(static_cast<double>(w0) / 1e6, 0);
  t2.row().integer(5).num(static_cast<double>(w5) / 1e6, 0);
  t2.row().integer(30).num(static_cast<double>(w30) / 1e6, 0);
  std::printf("%s\n", t2.render().c_str());

  bench::check(absorbed_30 > 0.90,
               "workstation case: a 30 s delay absorbs nearly all temp-file writes");
  bench::check(absorbed_0 < 0.40, "without the delay most temp-file data reaches disk");
  const double change = std::abs(static_cast<double>(w30 - w0)) / static_cast<double>(w0);
  std::printf("venus disk-write change with 30 s delay: %.1f%%\n", 100.0 * change);
  bench::check(change < 0.25,
               "supercomputer case: delaying writes barely changes disk traffic (data "
               "must go to disk anyway)");
  return 0;
}
