// Reproduces the appendix's format-size claim:
//
//   "Surprisingly, text traces were shorter than binary traces. This savings
//    occurred by converting integers which took 4 bytes in binary format
//    into variable-length printed ASCII. Since many values were only 1 or 2
//    printed characters, this conversion saved space."
//
// The binary format of that comparison is the flat `struct traceRecord` dump
// (44 bytes per record, every field always present). We also report our
// extension — a compressed fixed-width binary that applies the same
// field-omission flags as the text format — which reverses the verdict.
#include <cstdio>

#include "bench_common.hpp"
#include "trace/binary.hpp"
#include "util/table.hpp"
#include "workload/profiles.hpp"
#include "workload/trace_gen.hpp"

int main() {
  using namespace craysim;
  bench::heading("Appendix: trace size — ASCII vs struct-dump binary (vs compressed binary)");

  TextTable table({"app", "records", "ASCII B/rec", "struct binary B/rec",
                   "compressed binary B/rec (ext)"});
  int ascii_beats_struct = 0;
  int compressed_beats_ascii = 0;
  int total = 0;
  for (const workload::AppId app : workload::all_apps()) {
    const auto trace = workload::synthesize_trace(workload::make_profile(app));
    const auto cmp = trace::compare_formats(trace);
    table.row()
        .cell(std::string(workload::app_name(app)))
        .integer(static_cast<long long>(cmp.records))
        .num(cmp.ascii_per_record(), 1)
        .num(cmp.struct_per_record(), 1)
        .num(cmp.compressed_per_record(), 1);
    ++total;
    if (cmp.ascii_bytes < cmp.binary_struct_bytes) ++ascii_beats_struct;
    if (cmp.binary_compressed_bytes < cmp.ascii_bytes) ++compressed_beats_ascii;
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nASCII beats the struct dump for %d of %d traces (the paper's finding);\n"
              "field-omitting binary beats ASCII for %d of %d (our extension: the win came\n"
              "from omission + small deltas, not from text per se).\n",
              ascii_beats_struct, total, compressed_beats_ascii, total);

  bench::check(ascii_beats_struct == total,
               "variable-length ASCII is smaller than the fixed struct dump for every trace");
  bench::check(compressed_beats_ascii == total,
               "extension: compression-aware binary is smaller still");
  return 0;
}
