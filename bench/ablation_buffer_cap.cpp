// Ablation for the Section 6.2 buffer-hogging observation: "A limit on the
// number of buffers a process could own did not relieve the problem, and
// actually worsened CPU utilization in several cases."
//
// We run a hog-prone pair (venus + les) in a mid-size cache with and without
// per-process ownership caps.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "runner/runner.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"
#include "workload/profiles.hpp"

namespace {

struct Config {
  const char* name;
  craysim::Bytes cap;
};

craysim::sim::SimResult run_config(const Config& config) {
  using namespace craysim;
  sim::SimParams params = sim::SimParams::paper_main_memory(Bytes{32} * kMB);
  params.cache.per_process_cap = config.cap;
  sim::Simulator simulator(params);
  simulator.add_app(workload::make_profile(workload::AppId::kVenus, 11));
  simulator.add_app(workload::make_profile(workload::AppId::kLes, 22));
  return simulator.run();
}

}  // namespace

int main() {
  using namespace craysim;
  bench::heading("Ablation: per-process buffer ownership caps (venus + les, 32 MB cache)");

  const std::vector<Config> configs = {
      {"no cap (paper default)", 0},
      {"cap = 1/2 of cache", Bytes{16} * kMB},
      {"cap = 1/4 of cache", Bytes{8} * kMB},
      {"cap = 1/8 of cache", Bytes{4} * kMB},
  };
  runner::ExperimentRunner pool;
  const auto results = pool.run(configs, run_config);

  TextTable table({"configuration", "wall s", "idle s", "util %", "space waits"});
  double util_uncapped = 0;
  double util_worst_capped = 1.0;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const auto& c = configs[i];
    const auto& r = results[i];
    table.row()
        .cell(c.name)
        .num(r.total_wall.seconds(), 1)
        .num(r.idle_time().seconds(), 1)
        .num(100.0 * r.cpu_utilization(), 2)
        .integer(r.cache.space_waits);
    if (c.cap == 0) {
      util_uncapped = r.cpu_utilization();
    } else {
      util_worst_capped = std::min(util_worst_capped, r.cpu_utilization());
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf("paper: buffer caps 'did not relieve the problem, and actually worsened CPU "
              "utilization in several cases'\n");

  bench::check(util_worst_capped <= util_uncapped + 0.005,
               "ownership caps do not improve utilization (and can worsen it)");
  return 0;
}
