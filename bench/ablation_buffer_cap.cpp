// Ablation for the Section 6.2 buffer-hogging observation: "A limit on the
// number of buffers a process could own did not relieve the problem, and
// actually worsened CPU utilization in several cases."
//
// We run a hog-prone pair (venus + les) in a mid-size cache with and without
// per-process ownership caps.
#include <cstdio>
#include <numeric>
#include <vector>

#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "runner/runner.hpp"
#include "sim/simulator.hpp"
#include "sweep_obs.hpp"
#include "util/table.hpp"
#include "workload/profiles.hpp"

namespace {

struct Config {
  const char* name;
  craysim::Bytes cap;
};

craysim::sim::SimParams config_params(const Config& config) {
  using namespace craysim;
  sim::SimParams params = sim::SimParams::paper_main_memory(Bytes{32} * kMB);
  params.cache.per_process_cap = config.cap;
  return params;
}

craysim::sim::SimResult run_with(const craysim::sim::SimParams& params) {
  using namespace craysim;
  sim::Simulator simulator(params);
  simulator.add_app(workload::make_profile(workload::AppId::kVenus, 11));
  simulator.add_app(workload::make_profile(workload::AppId::kLes, 22));
  return simulator.run();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace craysim;
  const bench::ObsArgs obs_args = bench::ObsArgs::take(argc, argv);
  const bench::ResilienceArgs res_args = bench::ResilienceArgs::take(argc, argv);
  bench::heading("Ablation: per-process buffer ownership caps (venus + les, 32 MB cache)");

  const std::vector<Config> configs = {
      {"no cap (paper default)", 0},
      {"cap = 1/2 of cache", Bytes{16} * kMB},
      {"cap = 1/4 of cache", Bytes{8} * kMB},
      {"cap = 1/8 of cache", Bytes{4} * kMB},
  };
  runner::RunnerOptions runner_options = runner::RunnerOptions::from_env();
  runner_options.collect_telemetry = !obs_args.metrics_path.empty();
  bench::apply_resilience(res_args, runner_options);
  bench::SweepObserver sweep_obs(obs_args, configs.size());
  sweep_obs.arm_flight(res_args);
  bench::apply_telemetry(obs_args, runner_options, nullptr, sweep_obs);
  runner::ExperimentRunner pool(runner_options);
  std::vector<std::size_t> indices(configs.size());
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  const bench::SimResultCodec codec([&](std::size_t i) { return configs[i].name; });
  const auto results = bench::run_sweep(pool, res_args, indices, [&](std::size_t i) {
    sim::SimParams params = config_params(configs[i]);
    sweep_obs.instrument(i, configs[i].name, params);
    return run_with(params);
  }, codec, &sweep_obs);

  TextTable table({"configuration", "wall s", "idle s", "util %", "space waits"});
  double util_uncapped = 0;
  double util_worst_capped = 1.0;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const auto& c = configs[i];
    const auto& r = results[i];
    table.row()
        .cell(c.name)
        .num(r.total_wall.seconds(), 1)
        .num(r.idle_time().seconds(), 1)
        .num(100.0 * r.cpu_utilization(), 2)
        .integer(r.cache.space_waits);
    if (c.cap == 0) {
      util_uncapped = r.cpu_utilization();
    } else {
      util_worst_capped = std::min(util_worst_capped, r.cpu_utilization());
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf("paper: buffer caps 'did not relieve the problem, and actually worsened CPU "
              "utilization in several cases'\n");

  bench::check(util_worst_capped <= util_uncapped + 0.005,
               "ownership caps do not improve utilization (and can worsen it)");

  if (!sweep_obs.finish()) return 1;
  if (!bench::write_point_trace(obs_args, config_params(configs[0]),
                                [](const sim::SimParams& p) { (void)run_with(p); })) {
    return 1;
  }
  if (!obs_args.metrics_path.empty()) {
    obs::MetricsRegistry registry;
    results[0].publish_metrics(registry, "sim");
    pool.publish_metrics(registry);
    registry.save_jsonl(obs_args.metrics_path);
    std::printf("wrote %zu metrics to %s\n", registry.size(), obs_args.metrics_path.c_str());
  }
  return 0;
}
