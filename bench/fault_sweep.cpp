// Fault-injection sweep: how well does lossy-pipeline recovery preserve the
// paper's summary statistics as the collection channel degrades, and what do
// injected disk failures cost the Section 6 simulator?
//
// Sweeps packet-drop rates through the tracer and reports recovered-trace
// fidelity against the lossless stream, then sweeps disk transient-error
// rates through the simulator and reports the retry/backoff bill. Exits
// nonzero if recovery accounting ever disagrees with the injected schedule.
//
// Both sweeps fan out across the experiment runner; the drop-rate points all
// read one shared, immutable copy of the synthesized venus trace.
//
// Telemetry ("--metrics", "--perfetto", "--perfetto-sweep", "--timeseries",
// "--counter-interval <ms>") instruments the disk-fault *simulator* sweep;
// the tracer drop-rate sweep has no simulator and stays untelemetered. The
// resilience flags ("--journal", "--deadline", "--max-attempts",
// "--chaos-fail", "--chaos-seed"; docs/RESILIENCE.md) likewise apply to the
// simulator sweep only — it is the one whose points are slow enough to be
// worth checkpointing — and route it through its own resilient runner.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <numeric>
#include <optional>
#include <vector>

#include "bench_common.hpp"
#include "faults/fault.hpp"
#include "obs/metrics.hpp"
#include "runner/runner.hpp"
#include "sim/simulator.hpp"
#include "sweep_obs.hpp"
#include "trace/stats.hpp"
#include "tracer/pipeline.hpp"
#include "util/table.hpp"
#include "workload/profiles.hpp"
#include "workload/trace_gen.hpp"

namespace {

double pct_error(double measured, double truth) {
  if (truth == 0.0) return measured == 0.0 ? 0.0 : 100.0;
  return 100.0 * std::abs(measured - truth) / std::abs(truth);
}

struct DropResult {
  std::int64_t packets_missing = 0;
  std::int64_t packets_dropped = 0;
  std::int64_t gap_count = 0;
  std::int64_t entries_recovered = 0;
  std::int64_t entries_sent = 0;
  craysim::trace::TraceStats stats;
};

craysim::sim::SimParams disk_point_params(double rate) {
  using namespace craysim;
  sim::SimParams params = sim::SimParams::paper_main_memory(Bytes{32} * kMB);
  params.disk_count = 4;
  params.faults.disk.transient_error_rate = rate;
  params.faults.disk.permanent_error_rate = rate / 20.0;
  return params;
}

craysim::sim::SimResult run_disk_with(const craysim::sim::SimParams& params) {
  using namespace craysim;
  sim::Simulator sim(params);
  sim.add_app(workload::make_profile(workload::AppId::kVenus, 11));
  sim.add_app(workload::make_profile(workload::AppId::kLes, 22));
  return sim.run();
}

std::string disk_point_label(double rate) {
  char label[48];
  std::snprintf(label, sizeof label, "disk err %g%%", 100.0 * rate);
  return label;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace craysim;
  const bench::ObsArgs obs_args = bench::ObsArgs::take(argc, argv);
  const bench::ResilienceArgs res_args = bench::ResilienceArgs::take(argc, argv);
  bench::heading("Fault sweep: lossy trace recovery fidelity");

  const runner::SharedTrace original = runner::share_trace(
      workload::synthesize_trace(workload::make_profile(workload::AppId::kVenus)));
  const auto full = trace::compute_stats(*original);
  tracer::TracerOptions options;
  options.entries_per_packet = 16;  // small packets so drops bite at low rates

  const std::vector<double> drop_rates = {0.0, 0.01, 0.02, 0.05, 0.10, 0.20};
  // The observer watches the simulator sweep further down, but it has to
  // exist before whichever runner serves the live plane (its /attribution
  // handler is registered at runner construction).
  const std::vector<double> error_rates = {0.0, 0.01, 0.05, 0.10};
  bench::SweepObserver sweep_obs(obs_args, error_rates.size());
  sweep_obs.arm_flight(res_args);
  runner::RunnerOptions runner_options = runner::RunnerOptions::from_env();
  runner_options.collect_telemetry = !obs_args.metrics_path.empty();
  // With resilience flags the simulator sweep below gets its own pool, and
  // the live plane (one port) belongs to it; otherwise this shared pool
  // serves both sweeps.
  if (!res_args.any()) bench::apply_telemetry(obs_args, runner_options, nullptr, sweep_obs);
  runner::ExperimentRunner pool(runner_options);
  const std::vector<DropResult> drops = pool.run(drop_rates, [&](double rate) {
    faults::FaultPlan plan;
    plan.packet.drop_rate = rate;
    const auto collector = tracer::instrument_trace(*original, plan, options);
    const auto recovered =
        tracer::reconstruct_lossy(collector.log(), collector.sequences_issued());
    DropResult out;
    out.packets_missing = recovered.report.packets_missing;
    out.packets_dropped = collector.stats().packets_dropped;
    out.gap_count = recovered.report.gap_count;
    out.entries_recovered = recovered.report.entries_recovered;
    out.entries_sent = collector.stats().entries;
    out.stats = trace::compute_stats(recovered.trace);
    return out;
  });

  TextTable table({"drop rate %", "packets lost", "gaps", "entries kept %", "I/O count err %",
                   "bytes err %", "seq frac err %", "accounting"});
  bool accounting_ok = true;
  bool fidelity_ok = true;
  std::vector<double> kept_pct;
  for (std::size_t i = 0; i < drop_rates.size(); ++i) {
    const double rate = drop_rates[i];
    const DropResult& r = drops[i];
    const bool exact = r.packets_missing == r.packets_dropped;
    accounting_ok &= exact;
    const double kept = 100.0 * static_cast<double>(r.entries_recovered) /
                        static_cast<double>(r.entries_sent);
    const double io_err =
        pct_error(static_cast<double>(r.stats.io_count), static_cast<double>(full.io_count));
    const double bytes_err = pct_error(static_cast<double>(r.stats.total_bytes()),
                                       static_cast<double>(full.total_bytes()));
    const double seq_err = pct_error(r.stats.sequential_fraction(), full.sequential_fraction());
    if (rate <= 0.05) fidelity_ok &= io_err <= 10.0 && bytes_err <= 10.0 && seq_err <= 10.0;
    kept_pct.push_back(kept);

    table.row()
        .num(100.0 * rate, 0)
        .integer(r.packets_missing)
        .integer(r.gap_count)
        .num(kept, 1)
        .num(io_err, 2)
        .num(bytes_err, 2)
        .num(seq_err, 2)
        .cell(exact ? "exact" : "MISMATCH");
  }
  std::printf("%s", table.render().c_str());

  PlotOptions plot;
  plot.y_label = "entries kept %";
  plot.x_label = "sweep point (see table)";
  plot.height = 12;
  std::printf("%s", ascii_plot(kept_pct, plot).c_str());

  bench::heading("Fault sweep: simulator under injected disk failures");
  std::vector<std::size_t> indices(error_rates.size());
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  // The simulator sweep gets its own resilient runner only when a flag asks
  // for one; otherwise it reuses `pool` and the whole bench is byte-identical
  // to the pre-resilience behavior.
  std::optional<runner::ExperimentRunner> resilient_pool;
  if (res_args.any()) {
    runner::RunnerOptions sim_options = runner_options;
    bench::apply_resilience(res_args, sim_options);
    bench::apply_telemetry(obs_args, sim_options, nullptr, sweep_obs);
    resilient_pool.emplace(sim_options);
  }
  runner::ExperimentRunner& sim_pool = resilient_pool ? *resilient_pool : pool;
  const bench::SimResultCodec codec(
      [&](std::size_t i) { return disk_point_label(error_rates[i]); });
  const std::vector<sim::SimResult> disk_results =
      bench::run_sweep(sim_pool, res_args, indices, [&](std::size_t i) {
        sim::SimParams params = disk_point_params(error_rates[i]);
        sweep_obs.instrument(i, disk_point_label(error_rates[i]), params);
        return run_disk_with(params);
      }, codec, &sweep_obs);
  TextTable disks({"transient rate %", "wall s", "slowdown %", "transients", "retries",
                   "backoff s", "disks lost"});
  const double base_wall = disk_results[0].total_wall.seconds();
  bool survived_ok = true;
  for (std::size_t i = 0; i < error_rates.size(); ++i) {
    const sim::SimResult& result = disk_results[i];
    const double wall = result.total_wall.seconds();
    survived_ok &= result.total_wall > Ticks::zero();
    disks.row()
        .num(100.0 * error_rates[i], 0)
        .num(wall, 2)
        .num(base_wall > 0.0 ? 100.0 * (wall - base_wall) / base_wall : 0.0, 2)
        .integer(result.disk.transient_errors)
        .integer(result.disk.retries)
        .num(result.disk.retry_backoff_time.seconds(), 3)
        .integer(result.disk.permanent_failures);
  }
  std::printf("%s", disks.render().c_str());

  bench::check(accounting_ok, "reported missing packets always equal the injected drops");
  bench::check(fidelity_ok, "summary statistics stay within 10% of lossless up to 5% drop");
  bench::check(survived_ok, "the simulator completes every run, even degraded");

  if (!sweep_obs.finish()) return 1;
  if (!bench::write_point_trace(obs_args, disk_point_params(0.05),
                                [](const sim::SimParams& p) { (void)run_disk_with(p); })) {
    return 1;
  }
  if (!obs_args.metrics_path.empty()) {
    obs::MetricsRegistry registry;
    disk_results.back().publish_metrics(registry, "sim");
    // With resilience engaged the simulator sweep ran on its own pool, and
    // its tallies (including the runner.* resilience counters) are the
    // interesting ones; without it sim_pool IS pool, covering both sweeps.
    sim_pool.publish_metrics(registry);
    registry.save_jsonl(obs_args.metrics_path);
    std::printf("wrote %zu metrics to %s\n", registry.size(), obs_args.metrics_path.c_str());
  }
  return accounting_ok && fidelity_ok && survived_ok ? 0 : 1;
}
