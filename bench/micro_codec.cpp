// Microbenchmarks: trace-format encode/decode throughput and compression
// effectiveness (google-benchmark).
#include <benchmark/benchmark.h>

#include "micro_common.hpp"

#include <cstdio>
#include <span>
#include <sstream>
#include <string>

#include "trace/binary.hpp"
#include "trace/binary_stream.hpp"
#include "trace/codec.hpp"
#include "trace/stats.hpp"
#include "trace/stream.hpp"
#include "workload/profiles.hpp"
#include "workload/trace_gen.hpp"

namespace {

using namespace craysim;

const trace::Trace& venus_trace() {
  static const trace::Trace t =
      workload::synthesize_trace(workload::make_profile(workload::AppId::kVenus));
  return t;
}

void BM_Encode(benchmark::State& state) {
  const trace::Trace& t = venus_trace();
  std::int64_t records = 0;
  for (auto _ : state) {
    trace::AsciiTraceEncoder encoder;
    std::size_t bytes = 0;
    for (const auto& r : t) bytes += encoder.encode(r).size();
    benchmark::DoNotOptimize(bytes);
    records += static_cast<std::int64_t>(t.size());
  }
  state.SetItemsProcessed(records);
}
BENCHMARK(BM_Encode);

void BM_Decode(benchmark::State& state) {
  const std::string wire = trace::serialize_trace(venus_trace());
  std::int64_t records = 0;
  for (auto _ : state) {
    const trace::Trace t = trace::parse_trace(wire);
    benchmark::DoNotOptimize(t.data());
    records += static_cast<std::int64_t>(t.size());
  }
  state.SetItemsProcessed(records);
}
BENCHMARK(BM_Decode);

void BM_ComputeStats(benchmark::State& state) {
  const trace::Trace& t = venus_trace();
  std::int64_t records = 0;
  for (auto _ : state) {
    const auto stats = trace::compute_stats(t);
    benchmark::DoNotOptimize(&stats);
    records += static_cast<std::int64_t>(t.size());
  }
  state.SetItemsProcessed(records);
}
BENCHMARK(BM_ComputeStats);

// Decoding the venus trace from the framed binary stream (span mode, as the
// mmap path runs it). The whole-trace text decode above is the number this
// must beat.
void BM_DecodeBinaryStream(benchmark::State& state) {
  const trace::Trace& source = venus_trace();
  std::ostringstream wire;
  {
    trace::BinaryTraceWriter writer(wire);
    for (const auto& r : source) writer.write(r);
  }
  const std::string bytes = wire.str();
  const std::span<const std::byte> payload(reinterpret_cast<const std::byte*>(bytes.data()),
                                           bytes.size());
  std::int64_t records = 0;
  for (auto _ : state) {
    trace::BinaryTraceReader reader(payload);
    std::int64_t n = 0;
    while (auto record = reader.next()) {
      benchmark::DoNotOptimize(&*record);
      ++n;
    }
    records += n;
  }
  state.SetItemsProcessed(records);
}
BENCHMARK(BM_DecodeBinaryStream);

// Cold-ish load of a text trace through the mmap-backed load_trace path
// (file stays in page cache between iterations, so this measures the mapped
// parse rather than disk).
void BM_LoadTraceMmap(benchmark::State& state) {
  const std::string path = "/tmp/craysim_bench_mmap_trace.txt";
  trace::save_trace(venus_trace(), path);
  std::int64_t records = 0;
  for (auto _ : state) {
    const trace::Trace t = trace::load_trace_mapped(path);
    benchmark::DoNotOptimize(t.data());
    records += static_cast<std::int64_t>(t.size());
  }
  state.SetItemsProcessed(records);
  std::remove(path.c_str());
}
BENCHMARK(BM_LoadTraceMmap);

void BM_SynthesizeTrace(benchmark::State& state) {
  const auto profile = workload::make_profile(workload::AppId::kVenus);
  std::int64_t records = 0;
  for (auto _ : state) {
    const auto t = workload::synthesize_trace(profile);
    benchmark::DoNotOptimize(t.data());
    records += static_cast<std::int64_t>(t.size());
  }
  state.SetItemsProcessed(records);
}
BENCHMARK(BM_SynthesizeTrace);

}  // namespace

int main(int argc, char** argv) {
  return craysim::bench::run_micro_main(argc, argv, "codec");
}
