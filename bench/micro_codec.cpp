// Microbenchmarks: trace-format encode/decode throughput and compression
// effectiveness (google-benchmark).
#include <benchmark/benchmark.h>

#include "micro_common.hpp"

#include <sstream>

#include "trace/codec.hpp"
#include "trace/stats.hpp"
#include "trace/stream.hpp"
#include "workload/profiles.hpp"
#include "workload/trace_gen.hpp"

namespace {

using namespace craysim;

const trace::Trace& venus_trace() {
  static const trace::Trace t =
      workload::synthesize_trace(workload::make_profile(workload::AppId::kVenus));
  return t;
}

void BM_Encode(benchmark::State& state) {
  const trace::Trace& t = venus_trace();
  std::int64_t records = 0;
  for (auto _ : state) {
    trace::AsciiTraceEncoder encoder;
    std::size_t bytes = 0;
    for (const auto& r : t) bytes += encoder.encode(r).size();
    benchmark::DoNotOptimize(bytes);
    records += static_cast<std::int64_t>(t.size());
  }
  state.SetItemsProcessed(records);
}
BENCHMARK(BM_Encode);

void BM_Decode(benchmark::State& state) {
  const std::string wire = trace::serialize_trace(venus_trace());
  std::int64_t records = 0;
  for (auto _ : state) {
    const trace::Trace t = trace::parse_trace(wire);
    benchmark::DoNotOptimize(t.data());
    records += static_cast<std::int64_t>(t.size());
  }
  state.SetItemsProcessed(records);
}
BENCHMARK(BM_Decode);

void BM_ComputeStats(benchmark::State& state) {
  const trace::Trace& t = venus_trace();
  std::int64_t records = 0;
  for (auto _ : state) {
    const auto stats = trace::compute_stats(t);
    benchmark::DoNotOptimize(&stats);
    records += static_cast<std::int64_t>(t.size());
  }
  state.SetItemsProcessed(records);
}
BENCHMARK(BM_ComputeStats);

void BM_SynthesizeTrace(benchmark::State& state) {
  const auto profile = workload::make_profile(workload::AppId::kVenus);
  std::int64_t records = 0;
  for (auto _ : state) {
    const auto t = workload::synthesize_trace(profile);
    benchmark::DoNotOptimize(t.data());
    records += static_cast<std::int64_t>(t.size());
  }
  state.SetItemsProcessed(records);
}
BENCHMARK(BM_SynthesizeTrace);

}  // namespace

int main(int argc, char** argv) {
  return craysim::bench::run_micro_main(argc, argv, "codec");
}
