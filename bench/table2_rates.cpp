// Reproduces Table 2: I/O request rates and data rates of the traced
// applications, split by direction, with the read/write data ratio.
#include <cmath>
#include <cstdio>

#include "analysis/tables.hpp"
#include "bench_common.hpp"
#include "trace/stats.hpp"
#include "workload/profiles.hpp"
#include "workload/trace_gen.hpp"

int main() {
  using namespace craysim;
  bench::heading("Table 2: I/O request rates and data rates");

  std::vector<analysis::AppMeasurement> measurements;
  for (const workload::AppId app : workload::all_apps()) {
    const auto profile = workload::make_profile(app);
    const auto trace = workload::synthesize_trace(profile);
    measurements.push_back({app, trace::compute_stats(trace)});
  }
  const TextTable table = analysis::build_table2(measurements);
  std::printf("%s", table.render().c_str());

  // Section 5.2's qualitative claims on top of the raw numbers.
  auto stats_of = [&](workload::AppId id) -> const trace::TraceStats& {
    for (const auto& m : measurements) {
      if (m.app == id) return m.stats;
    }
    std::abort();
  };
  const auto& gcm = stats_of(workload::AppId::kGcm);
  const auto& upw = stats_of(workload::AppId::kUpw);
  const auto& forma = stats_of(workload::AppId::kForma);

  bench::check(gcm.read_write_ratio() < 1.0 && upw.read_write_ratio() < 1.0,
               "only gcm and upw (the low-I/O programs) have R/W ratios well under one");
  bool heavy_ok = true;
  for (const auto& m : measurements) {
    if (m.app == workload::AppId::kGcm || m.app == workload::AppId::kUpw) continue;
    if (m.app == workload::AppId::kLes) continue;  // les is ~0.95, the paper's borderline case
    heavy_ok &= m.stats.read_write_ratio() >= 1.0;
  }
  bench::check(heavy_ok, "I/O-heavy programs re-read data: R/W ratio >= 1");
  bench::check(forma.read_write_ratio() > 8.0,
               "forma re-reads its sparse blocks many times (R/W ~ 11)");
  return 0;
}
