// Microbenchmark for the parallel experiment runner: wall-clock for a
// policy-style sweep executed serially vs across all cores, plus the
// determinism check that both orderings produce bit-identical results.
//
// Exits nonzero only if the parallel results diverge from the serial ones;
// the measured speedup is reported (and written to the "runner" JSON
// section) but not gated, since it depends on the host's core count.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "runner/runner.hpp"
#include "sim/simulator.hpp"
#include "util/digest.hpp"
#include "workload/profiles.hpp"

namespace {

using namespace craysim;

struct SweepPoint {
  Bytes cache_size = 0;
  bool read_ahead = false;
  bool write_behind = false;
};

std::uint64_t run_point(const SweepPoint& point) {
  sim::SimParams params = sim::SimParams::paper_main_memory(point.cache_size);
  params.cache.read_ahead = point.read_ahead;
  params.cache.write_behind = point.write_behind;
  sim::Simulator simulator(params);
  simulator.add_app(workload::make_profile(workload::AppId::kVenus, 11));
  const sim::SimResult result = simulator.run();
  util::Fnv1a digest;
  digest.add(result.total_wall.count());
  digest.add(result.cpu_busy.count());
  digest.add(result.cpu_idle.count());
  digest.add(result.cache.read_requests);
  digest.add(result.cache.read_misses);
  digest.add(result.cache.write_requests);
  digest.add(result.cache.evictions);
  digest.add(result.disk.read_ops);
  digest.add(result.disk.write_ops);
  return digest.value();
}

double sweep_seconds(runner::ExperimentRunner& pool, const std::vector<SweepPoint>& points,
                     std::vector<std::uint64_t>& digests) {
  const auto begin = std::chrono::steady_clock::now();
  digests = pool.run(points, run_point);
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(end - begin).count();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::take_json_arg(argc, argv);
  bench::heading("Experiment-runner microbenchmark: serial vs parallel sweep");

  std::vector<SweepPoint> points;
  for (const Bytes mb : {8, 16, 32}) {
    for (const bool ra : {true, false}) {
      for (const bool wb : {true, false}) {
        points.push_back({mb * kMB, ra, wb});
      }
    }
  }

  runner::ExperimentRunner serial(runner::RunnerOptions{.threads = 1});
  runner::ExperimentRunner parallel{};  // CRAYSIM_RUNNER_THREADS or all cores
  std::vector<std::uint64_t> serial_digests;
  std::vector<std::uint64_t> parallel_digests;
  // Parallel first so the serial pass cannot win from a warm page cache.
  const double parallel_s = sweep_seconds(parallel, points, parallel_digests);
  const double serial_s = sweep_seconds(serial, points, serial_digests);
  const double speedup = parallel_s > 0.0 ? serial_s / parallel_s : 0.0;

  const bool identical = serial_digests == parallel_digests;
  std::printf("sweep points:      %zu\n", points.size());
  std::printf("threads (parallel): %u\n", parallel.thread_count());
  std::printf("serial:            %.3f s\n", serial_s);
  std::printf("parallel:          %.3f s\n", parallel_s);
  std::printf("speedup:           %.2fx\n", speedup);
  bench::check(identical, "parallel sweep results are bit-identical to the serial sweep");

  if (!json_path.empty()) {
    bench::write_json_section(json_path, "runner",
                              {{"sweep_points", static_cast<double>(points.size())},
                               {"threads", static_cast<double>(parallel.thread_count())},
                               {"serial_s", serial_s},
                               {"parallel_s", parallel_s},
                               {"speedup", speedup}});
  }
  return identical ? 0 : 1;
}
