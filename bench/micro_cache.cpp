// Microbenchmarks: buffer-cache planning and flush-path throughput.
#include <benchmark/benchmark.h>

#include "micro_common.hpp"

#include "sim/cache.hpp"

namespace {

using namespace craysim;

sim::CacheParams big_cache() {
  sim::CacheParams p;
  p.capacity = Bytes{256} * kMB;
  p.block_size = 4 * kKiB;
  return p;
}

void BM_CacheSequentialReadHits(benchmark::State& state) {
  sim::CacheMetrics metrics;
  sim::BufferCache cache(big_cache(), metrics);
  // Warm 128 MB of one file.
  const Bytes request = 512 * kKiB;
  for (Bytes off = 0; off < Bytes{128} * kMB; off += request) {
    const auto plan = cache.plan_read(1, 1, off, request, 1000 + static_cast<std::uint64_t>(off));
    for (const auto& run : plan.fetch_runs) cache.fetch_complete(run);
  }
  std::int64_t ops = 0;
  Bytes off = 0;
  for (auto _ : state) {
    const auto plan = cache.plan_read(1, 1, off, request, 1);
    benchmark::DoNotOptimize(plan.full_hit);
    off = (off + request) % (Bytes{128} * kMB);
    ++ops;
  }
  state.SetItemsProcessed(ops);
  state.SetBytesProcessed(ops * request);
}
BENCHMARK(BM_CacheSequentialReadHits);

void BM_CacheWriteBehindAbsorb(benchmark::State& state) {
  sim::CacheMetrics metrics;
  sim::BufferCache cache(big_cache(), metrics);
  const Bytes request = 448 * kKiB;
  std::int64_t ops = 0;
  Bytes off = 0;
  std::uint64_t op = 1;
  for (auto _ : state) {
    const auto plan = cache.plan_write(1, 1, off, request, op++, /*write_behind=*/true);
    benchmark::DoNotOptimize(plan.absorbed);
    off = (off + request) % (Bytes{64} * kMB);
    if (cache.dirty_block_count() > (Bytes{128} * kMB) / (4 * kKiB)) {
      for (const auto& run : cache.collect_flush_batch(1 << 20)) cache.flush_complete(run);
    }
    ++ops;
  }
  state.SetItemsProcessed(ops);
  state.SetBytesProcessed(ops * request);
}
BENCHMARK(BM_CacheWriteBehindAbsorb);

void BM_CacheMissAndEvict(benchmark::State& state) {
  sim::CacheParams params = big_cache();
  params.capacity = Bytes{16} * kMB;  // small: every read evicts
  params.read_ahead = false;
  sim::CacheMetrics metrics;
  sim::BufferCache cache(params, metrics);
  const Bytes request = 256 * kKiB;
  std::int64_t ops = 0;
  Bytes off = 0;
  std::uint64_t op = 1;
  for (auto _ : state) {
    const auto plan = cache.plan_read(1, 1, off, request, op);
    op += plan.fetch_runs.size();
    for (const auto& run : plan.fetch_runs) cache.fetch_complete(run);
    off += request;  // endless streaming
    ++ops;
  }
  state.SetItemsProcessed(ops);
  state.SetBytesProcessed(ops * request);
}
BENCHMARK(BM_CacheMissAndEvict);

void BM_FlushBatchCollection(benchmark::State& state) {
  sim::CacheMetrics metrics;
  sim::BufferCache cache(big_cache(), metrics);
  std::uint64_t op = 1;
  std::int64_t blocks = 0;
  for (auto _ : state) {
    state.PauseTiming();
    for (Bytes off = 0; off < Bytes{64} * kMB; off += 512 * kKiB) {
      (void)cache.plan_write(1, 1, off, 512 * kKiB, op++, true);
    }
    state.ResumeTiming();
    const auto runs = cache.collect_flush_batch(1 << 20, 64);
    for (const auto& run : runs) {
      blocks += run.count;
      cache.flush_complete(run);
    }
  }
  state.SetItemsProcessed(blocks);
}
BENCHMARK(BM_FlushBatchCollection);

}  // namespace

int main(int argc, char** argv) {
  return craysim::bench::run_micro_main(argc, argv, "cache");
}
