// Reproduces Figure 7: disk data rate for two copies of venus with a 128 MB
// (SSD-class) cache.
//
// With the working sets resident, "almost all of the read requests were
// satisfied by the SSD, so there were very few disk read requests. However
// ... the writes from cache to disk still did not come evenly; instead,
// they were bursty in the same way that the requests to cache were bursty."
#include <cstdio>
#include <utility>
#include <vector>

#include "analysis/series.hpp"
#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "runner/runner.hpp"
#include "sim/simulator.hpp"
#include "sweep_obs.hpp"
#include "workload/profiles.hpp"

namespace {

craysim::sim::SimResult run_with(const craysim::sim::SimParams& params) {
  using namespace craysim;
  sim::Simulator simulator(params);
  simulator.add_app(workload::make_profile(workload::AppId::kVenus, 11));
  simulator.add_app(workload::make_profile(workload::AppId::kVenus, 22));
  return simulator.run();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace craysim;
  const bench::ObsArgs obs_args = bench::ObsArgs::take(argc, argv);
  const bench::ResilienceArgs res_args = bench::ResilienceArgs::take(argc, argv);
  bench::heading("Figure 7: 2 x venus, 128 MB SSD cache -- disk data rate (wall time)");

  // A single configuration, still dispatched through the experiment runner so
  // every figure bench shares one execution path.
  runner::RunnerOptions runner_options = runner::RunnerOptions::from_env();
  runner_options.collect_telemetry = !obs_args.metrics_path.empty();
  bench::apply_resilience(res_args, runner_options);
  bench::SweepObserver sweep_obs(obs_args, 1);
  sweep_obs.arm_flight(res_args);
  bench::apply_telemetry(obs_args, runner_options, nullptr, sweep_obs);
  runner::ExperimentRunner pool(runner_options);
  const std::vector<std::size_t> points = {0};
  const bench::SimResultCodec codec([](std::size_t) { return "venus x2, 128 MB SSD"; });
  sim::SimResult result = std::move(bench::run_sweep(pool, res_args, points, [&](std::size_t) {
    sim::SimParams params = sim::SimParams::paper_ssd(Bytes{128} * kMB);
    sweep_obs.instrument(0, "venus x2, 128 MB SSD", params);
    return run_with(params);
  }, codec, &sweep_obs)[0]);

  auto rates = result.disk_rate.rates();
  const std::size_t window = std::min<std::size_t>(rates.size(), 200);
  std::vector<double> first200(rates.begin(), rates.begin() + static_cast<std::ptrdiff_t>(window));
  bench::print_rate_figure(first200, "disk MB/s", "wall seconds",
                           result.disk_rate.bin_width().seconds());
  std::printf("%s", result.summary().c_str());

  const Bytes disk_reads = result.disk.bytes_read;
  const Bytes disk_writes = result.disk.bytes_written;
  std::printf("cache->disk: %s of reads, %s of writes\n", format_bytes(disk_reads).c_str(),
              format_bytes(disk_writes).c_str());

  std::vector<double> wr(result.disk_write_rate.rates());
  for (auto& v : wr) v /= 1e6;
  bench::check(disk_reads < disk_writes / 10,
               "almost all reads are satisfied in the 128 MB cache (few disk reads)");
  bench::check(analysis::peak_to_mean(wr) > 1.5,
               "writes from cache to disk still arrive in bursts");
  bench::check(result.cpu_idle < Ticks::from_seconds(10),
               "2 x venus runs with little or no idle time in a 128 MB cache");

  if (!sweep_obs.finish()) return 1;
  if (!bench::write_point_trace(obs_args, sim::SimParams::paper_ssd(Bytes{128} * kMB),
                                [](const sim::SimParams& p) { (void)run_with(p); })) {
    return 1;
  }
  if (!obs_args.metrics_path.empty()) {
    obs::MetricsRegistry registry;
    result.publish_metrics(registry, "sim");
    pool.publish_metrics(registry);
    registry.save_jsonl(obs_args.metrics_path);
    std::printf("wrote %zu metrics to %s\n", registry.size(), obs_args.metrics_path.c_str());
  }
  return 0;
}
