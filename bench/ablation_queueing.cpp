// Ablation for the Section 6.1 limitation: the paper's disk model has no
// request queueing ("This simplification significantly affected our
// results"). Here we quantify it: the same workload under (a) the paper's
// no-queueing model on one virtual disk, (b) FIFO queueing on one disk,
// (c) FIFO queueing across a small farm of disks with file affinity.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "runner/runner.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"
#include "workload/profiles.hpp"

namespace {

struct Config {
  const char* name;
  bool queueing;
  std::int32_t disks;
};

craysim::sim::SimResult run_config(const Config& config) {
  using namespace craysim;
  sim::SimParams params = sim::SimParams::paper_main_memory(Bytes{32} * kMB);
  params.disk_queueing = config.queueing;
  params.disk_count = config.disks;
  sim::Simulator simulator(params);
  simulator.add_app(workload::make_profile(workload::AppId::kVenus, 11));
  simulator.add_app(workload::make_profile(workload::AppId::kVenus, 22));
  return simulator.run();
}

}  // namespace

int main() {
  using namespace craysim;
  bench::heading("Ablation: disk queueing (2 x venus, 32 MB main-memory cache)");

  const std::vector<Config> configs = {
      {"paper mode: no queueing, 1 disk", false, 1},
      {"FIFO queueing, 1 disk", true, 1},
      {"FIFO queueing, 4 disks", true, 4},
      {"FIFO queueing, 16 disks", true, 16},
  };
  runner::ExperimentRunner pool;
  const auto results = pool.run(configs, run_config);

  TextTable table({"configuration", "wall s", "idle s", "util %", "disk queue wait s"});
  double wall_paper = 0;
  double wall_queue1 = 0;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const auto& c = configs[i];
    const auto& r = results[i];
    table.row()
        .cell(c.name)
        .num(r.total_wall.seconds(), 1)
        .num(r.idle_time().seconds(), 1)
        .num(100.0 * r.cpu_utilization(), 1)
        .num(r.disk.queue_wait_time.seconds(), 1);
    if (!c.queueing) wall_paper = r.total_wall.seconds();
    if (c.queueing && c.disks == 1) wall_queue1 = r.total_wall.seconds();
  }
  std::printf("%s", table.render().c_str());
  std::printf("paper: 'There was no queueing at the disks ... This simplification significantly "
              "affected our results.'\n");

  bench::check(wall_queue1 > wall_paper * 1.05,
               "single-disk FIFO queueing slows the workload vs the paper's optimistic model");
  return 0;
}
