// Ablation for the Section 6.1 limitation: the paper's disk model has no
// request queueing ("This simplification significantly affected our
// results"). Here we quantify it: the same workload under (a) the paper's
// no-queueing model on one virtual disk, (b) FIFO queueing on one disk,
// (c) FIFO queueing across a small farm of disks with file affinity.
#include <cstdio>
#include <numeric>
#include <vector>

#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "runner/runner.hpp"
#include "sim/simulator.hpp"
#include "sweep_obs.hpp"
#include "util/table.hpp"
#include "workload/profiles.hpp"

namespace {

struct Config {
  const char* name;
  bool queueing;
  std::int32_t disks;
};

craysim::sim::SimParams config_params(const Config& config) {
  using namespace craysim;
  sim::SimParams params = sim::SimParams::paper_main_memory(Bytes{32} * kMB);
  params.disk_queueing = config.queueing;
  params.disk_count = config.disks;
  return params;
}

craysim::sim::SimResult run_with(const craysim::sim::SimParams& params) {
  using namespace craysim;
  sim::Simulator simulator(params);
  simulator.add_app(workload::make_profile(workload::AppId::kVenus, 11));
  simulator.add_app(workload::make_profile(workload::AppId::kVenus, 22));
  return simulator.run();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace craysim;
  const bench::ObsArgs obs_args = bench::ObsArgs::take(argc, argv);
  const bench::ResilienceArgs res_args = bench::ResilienceArgs::take(argc, argv);
  bench::heading("Ablation: disk queueing (2 x venus, 32 MB main-memory cache)");

  const std::vector<Config> configs = {
      {"paper mode: no queueing, 1 disk", false, 1},
      {"FIFO queueing, 1 disk", true, 1},
      {"FIFO queueing, 4 disks", true, 4},
      {"FIFO queueing, 16 disks", true, 16},
  };
  runner::RunnerOptions runner_options = runner::RunnerOptions::from_env();
  runner_options.collect_telemetry = !obs_args.metrics_path.empty();
  bench::apply_resilience(res_args, runner_options);
  bench::SweepObserver sweep_obs(obs_args, configs.size());
  sweep_obs.arm_flight(res_args);
  bench::apply_telemetry(obs_args, runner_options, nullptr, sweep_obs);
  runner::ExperimentRunner pool(runner_options);
  std::vector<std::size_t> indices(configs.size());
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  const bench::SimResultCodec codec([&](std::size_t i) { return configs[i].name; });
  const auto results = bench::run_sweep(pool, res_args, indices, [&](std::size_t i) {
    sim::SimParams params = config_params(configs[i]);
    sweep_obs.instrument(i, configs[i].name, params);
    return run_with(params);
  }, codec, &sweep_obs);

  TextTable table({"configuration", "wall s", "idle s", "util %", "disk queue wait s"});
  double wall_paper = 0;
  double wall_queue1 = 0;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const auto& c = configs[i];
    const auto& r = results[i];
    table.row()
        .cell(c.name)
        .num(r.total_wall.seconds(), 1)
        .num(r.idle_time().seconds(), 1)
        .num(100.0 * r.cpu_utilization(), 1)
        .num(r.disk.queue_wait_time.seconds(), 1);
    if (!c.queueing) wall_paper = r.total_wall.seconds();
    if (c.queueing && c.disks == 1) wall_queue1 = r.total_wall.seconds();
  }
  std::printf("%s", table.render().c_str());
  std::printf("paper: 'There was no queueing at the disks ... This simplification significantly "
              "affected our results.'\n");

  bench::check(wall_queue1 > wall_paper * 1.05,
               "single-disk FIFO queueing slows the workload vs the paper's optimistic model");

  if (!sweep_obs.finish()) return 1;
  if (!bench::write_point_trace(obs_args, config_params(configs[2]),
                                [](const sim::SimParams& p) { (void)run_with(p); })) {
    return 1;
  }
  if (!obs_args.metrics_path.empty()) {
    obs::MetricsRegistry registry;
    results[0].publish_metrics(registry, "sim");
    pool.publish_metrics(registry);
    registry.save_jsonl(obs_args.metrics_path);
    std::printf("wrote %zu metrics to %s\n", registry.size(), obs_args.metrics_path.c_str());
  }
  return 0;
}
