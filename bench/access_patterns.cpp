// Reproduces the Section 5.2/5.3 access-pattern analysis: high
// sequentiality, constant per-stream request sizes, traffic concentrated in
// a few large files, and cyclic bursts matching the algorithms' iterations.
#include <cstdio>

#include "analysis/patterns.hpp"
#include "bench_common.hpp"
#include "util/table.hpp"
#include "workload/profiles.hpp"
#include "workload/trace_gen.hpp"

int main() {
  using namespace craysim;
  bench::heading("Sections 5.2/5.3: access-pattern characteristics per application");

  TextTable table({"app", "sequential %", "constant-size %", "top-6-file byte share %",
                   "burst spacing s", "regularity"});
  bool seq_ok = true;
  bool size_ok = true;
  bool conc_ok = true;
  for (const workload::AppId app : workload::all_apps()) {
    const auto profile = workload::make_profile(app);
    const auto trace = workload::synthesize_trace(profile);
    const auto report = analysis::analyze_patterns(trace);
    const auto stats = trace::compute_stats(trace);
    table.row()
        .cell(std::string(workload::app_name(app)))
        .num(100.0 * report.sequential_fraction, 1)
        .num(100.0 * report.constant_size_share, 1)
        .num(100.0 * stats.top_file_byte_share(6), 1)
        .num(report.cycle_seconds, 2)
        .num(report.cycle_strength, 2);
    seq_ok &= report.sequential_fraction > 0.80;
    size_ok &= report.constant_size_share > 0.90;
    conc_ok &= stats.top_file_byte_share(6) > 0.90;
  }
  std::printf("%s", table.render().c_str());

  bench::check(seq_ok, "file accesses are highly sequential (>80% in every application)");
  bench::check(size_ok, "request sizes are essentially constant within each stream");
  bench::check(conc_ok, "a small number of files carries the vast majority of bytes");
  return 0;
}
