// Reproduces the Section 4.3 trace-collection engineering results:
//  * batching amortizes the 8-word packet header over hundreds of I/Os,
//  * total tracing overhead stays under 20% of I/O system-call time,
//  * the packet log reconstructs exactly back to the time-ordered stream
//    (after the buffering/merge the paper describes).
#include <cstdio>

#include "bench_common.hpp"
#include "tracer/pipeline.hpp"
#include "util/table.hpp"
#include "workload/profiles.hpp"
#include "workload/trace_gen.hpp"

int main() {
  using namespace craysim;
  bench::heading("Section 4.3: trace-collection pipeline overheads");

  TextTable table({"app", "I/Os", "packets", "bytes/I/O", "header overhead %", "tracing CPU %",
                   "forced flushes", "round-trip"});
  bool overhead_ok = true;
  bool roundtrip_ok = true;
  for (const workload::AppId app : workload::all_apps()) {
    const auto profile = workload::make_profile(app);
    const auto trace = workload::synthesize_trace(profile);
    const tracer::TracerOptions options;
    const auto collector = tracer::instrument_trace(trace, options);
    const auto& stats = collector.stats();

    const double header_share =
        stats.packet_bytes > 0
            ? 100.0 * static_cast<double>(stats.packets * tracer::TracePacket::kHeaderBytes) /
                  static_cast<double>(stats.packet_bytes)
            : 0.0;
    const double cpu_pct = 100.0 * stats.overhead_fraction(options.io_syscall_time);
    const auto rebuilt = tracer::reconstruct(collector.log());
    bool equal = rebuilt.size() == trace.size();
    for (std::size_t i = 0; equal && i < rebuilt.size(); ++i) {
      const auto& a = rebuilt[i];
      const auto& b = trace[i];
      equal = a.start_time == b.start_time && a.offset == b.offset && a.length == b.length &&
              a.file_id == b.file_id && a.is_write() == b.is_write();
    }
    table.row()
        .cell(std::string(workload::app_name(app)))
        .integer(stats.entries)
        .integer(stats.packets)
        .num(stats.bytes_per_io(), 1)
        .num(header_share, 1)
        .num(cpu_pct, 1)
        .integer(stats.forced_flushes)
        .cell(equal ? "exact" : "MISMATCH");
    overhead_ok &= cpu_pct < 20.0;
    roundtrip_ok &= equal;
  }
  std::printf("%s", table.render().c_str());

  // Contrast: a packet per I/O would pay the full header each time.
  std::printf("\nunbatched baseline: one packet per I/O costs %lld header bytes per I/O\n",
              static_cast<long long>(tracer::TracePacket::kHeaderBytes));

  bench::check(overhead_ok, "tracing overhead is below 20% of I/O system call time");
  bench::check(roundtrip_ok, "packet logs reconstruct exactly to the original stream");
  return 0;
}
