// fault_drill: run the whole pipeline through a disaster drill — a lossy
// procstat channel in front of the tracer, a parse error budget on the trace
// reader, and a disk farm that loses a device mid-run — and show that every
// layer degrades gracefully and accounts for what it lost.
#include <cstdio>

#include "faults/fault.hpp"
#include "sim/simulator.hpp"
#include "trace/stats.hpp"
#include "trace/stream.hpp"
#include "tracer/pipeline.hpp"
#include "workload/profiles.hpp"
#include "workload/trace_gen.hpp"

int main() {
  using namespace craysim;

  // 1. Collect a trace over a lossy channel: drops, duplicates, reorders,
  //    and the occasional corrupted entry.
  std::printf("1. collecting venus over a lossy procstat channel...\n");
  const auto original =
      workload::synthesize_trace(workload::make_profile(workload::AppId::kVenus));
  faults::FaultPlan channel;
  channel.seed = 0xD811;
  channel.packet.drop_rate = 0.03;
  channel.packet.duplicate_rate = 0.02;
  channel.packet.reorder_rate = 0.02;
  channel.packet.corrupt_entry_rate = 0.005;
  tracer::TracerOptions options;
  options.entries_per_packet = 16;
  const auto collector = tracer::instrument_trace(original, channel, options);
  const auto& stats = collector.stats();
  std::printf("   %lld I/Os -> %lld packets; channel injected %lld drops, %lld dups,\n"
              "   %lld reorders, %lld corrupted entries\n",
              static_cast<long long>(stats.entries), static_cast<long long>(stats.packets),
              static_cast<long long>(stats.packets_dropped),
              static_cast<long long>(stats.packets_duplicated),
              static_cast<long long>(stats.packets_reordered),
              static_cast<long long>(stats.entries_corrupted));

  // 2. Reconstruct what survived. The report says exactly what was lost and
  //    when, from sequence numbers alone.
  std::printf("\n2. reconstructing from the surviving packets...\n");
  const auto recovered =
      tracer::reconstruct_lossy(collector.log(), collector.sequences_issued());
  const auto& report = recovered.report;
  std::printf("   %lld packets delivered, %lld missing across %lld gaps, %lld duplicates\n"
              "   discarded; %lld entries recovered, %lld corrupt entries dropped\n",
              static_cast<long long>(report.packets_delivered),
              static_cast<long long>(report.packets_missing),
              static_cast<long long>(report.gap_count),
              static_cast<long long>(report.duplicates_discarded),
              static_cast<long long>(report.entries_recovered),
              static_cast<long long>(report.entries_discarded));
  for (std::size_t i = 0; i < report.gaps.size() && i < 3; ++i) {
    const auto& gap = report.gaps[i];
    std::printf("   gap %zu: %lld packet(s) from sequence %llu, window %.3f s .. %.3f s\n",
                i + 1, static_cast<long long>(gap.missing),
                static_cast<unsigned long long>(gap.first_missing), gap.window_start.seconds(),
                gap.window_end == Ticks::max() ? -1.0 : gap.window_end.seconds());
  }
  const auto full = trace::compute_stats(original);
  const auto part = trace::compute_stats(recovered.trace);
  std::printf("   summary stats, lossless vs recovered: %lld vs %lld I/Os, %.2f vs %.2f avg KB,\n"
              "   %.1f%% vs %.1f%% sequential\n",
              static_cast<long long>(full.io_count), static_cast<long long>(part.io_count),
              full.avg_io_bytes() / 1024.0, part.avg_io_bytes() / 1024.0,
              100.0 * full.sequential_fraction(), 100.0 * part.sequential_fraction());

  // 3. Ship the recovered trace over a mildly hostile wire and parse it with
  //    an error budget instead of giving up at the first bad line.
  std::printf("\n3. parsing a damaged trace file under an error budget...\n");
  std::string wire = trace::serialize_trace(recovered.trace, "fault drill");
  constexpr std::size_t kNoiseSites = 40;  // each can strand a neighbour or two
  for (std::size_t i = 0; i < kNoiseSites; ++i) {
    wire[400 + i * ((wire.size() - 800) / kNoiseSites)] = '#';
  }
  trace::RecoveryOptions budget;
  budget.error_budget = 200;
  const auto parsed = trace::parse_trace_lossy(wire, budget);
  std::printf("   %lld records parsed, %lld lines skipped (budget %lld); first defect: line %lld\n",
              static_cast<long long>(parsed.report.records_parsed),
              static_cast<long long>(parsed.report.lines_skipped),
              static_cast<long long>(budget.error_budget),
              parsed.report.defects.empty()
                  ? 0LL
                  : static_cast<long long>(parsed.report.defects.front().line));

  // 4. Feed the workload to a simulator whose disk farm misbehaves: transient
  //    errors retried with backoff, one disk eventually failing for good.
  std::printf("\n4. simulating on a failing disk farm...\n");
  sim::SimParams params = sim::SimParams::paper_main_memory(Bytes{32} * kMB);
  params.disk_count = 4;
  params.faults.seed = 0xD812;
  params.faults.disk.transient_error_rate = 0.05;
  params.faults.disk.permanent_error_rate = 0.002;
  sim::Simulator sim(params);
  sim.add_app(workload::make_profile(workload::AppId::kVenus));
  const sim::SimResult result = sim.run();
  std::printf("%s", result.summary().c_str());

  const bool ok = report.packets_missing == stats.packets_dropped &&
                  report.duplicates_discarded == stats.packets_duplicated &&
                  parsed.report.records_parsed > 0 && result.total_wall > Ticks::zero();
  std::printf("\ndrill %s: every loss accounted for, no layer aborted\n",
              ok ? "PASSED" : "FAILED");
  return ok ? 0 : 1;
}
