// checkpoint_planner: pick a checkpoint interval for a long-running
// simulation, quantifying the Section 5.1 balance between checkpoint cost
// and redone work.
//
// Usage: checkpoint_planner [--work 7200] [--cost 20] [--mtbf 3600]
//                           [--restart 60]
//   --work S     total useful CPU seconds the job needs (default 7200)
//   --cost S     seconds to write one checkpoint (e.g. 40 MB at 2 MB/s = 20)
//   --mtbf S     mean time between failures (default 3600)
//   --restart S  seconds to reload state after a crash (default 60)
#include <cstdio>
#include <string>

#include "analysis/checkpoint.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/text.hpp"

int main(int argc, char** argv) {
  using namespace craysim;
  double work_s = 7200;
  double cost_s = 20;
  double mtbf_s = 3600;
  double restart_s = 60;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string arg = argv[i];
    const auto value = parse_double(argv[i + 1]);
    if (!value || *value <= 0) {
      std::fprintf(stderr, "bad value for %s\n", arg.c_str());
      return 2;
    }
    if (arg == "--work") {
      work_s = *value;
    } else if (arg == "--cost") {
      cost_s = *value;
    } else if (arg == "--mtbf") {
      mtbf_s = *value;
    } else if (arg == "--restart") {
      restart_s = *value;
    } else {
      std::fprintf(stderr, "usage: checkpoint_planner [--work S] [--cost S] [--mtbf S] "
                           "[--restart S]\n");
      return 2;
    }
  }

  analysis::CheckpointModel model;
  model.work = Ticks::from_seconds(work_s);
  model.checkpoint_cost = Ticks::from_seconds(cost_s);
  model.mtbf_seconds = mtbf_s;
  model.restart_cost = Ticks::from_seconds(restart_s);

  std::printf("job: %.0f s of work | checkpoint %.0f s | MTBF %.0f s | restart %.0f s\n\n",
              work_s, cost_s, mtbf_s, restart_s);

  Rng rng(2026);
  TextTable table({"interval s", "expected wall s", "overhead %", "simulated wall s"});
  for (const double interval_s : {60.0, 120.0, 240.0, 480.0, 960.0, 1920.0, 3840.0}) {
    const Ticks interval = Ticks::from_seconds(interval_s);
    const double expected = analysis::expected_runtime_s(model, interval);
    const double simulated = analysis::simulate_runtime_s(model, interval, 400, rng);
    table.row()
        .num(interval_s, 0)
        .num(expected, 0)
        .num(100.0 * (expected - work_s) / work_s, 1)
        .num(simulated, 0);
  }
  std::printf("%s", table.render().c_str());

  const Ticks young = analysis::youngs_interval(model);
  const Ticks best = analysis::optimal_interval(model, Ticks::from_seconds(10),
                                                Ticks::from_seconds(work_s));
  std::printf("\nYoung's approximation: checkpoint every %.0f s\n", young.seconds());
  std::printf("grid-search optimum:   checkpoint every %.0f s "
              "(expected wall %.0f s, %.1f%% overhead)\n",
              best.seconds(), analysis::expected_runtime_s(model, best),
              100.0 * (analysis::expected_runtime_s(model, best) - work_s) / work_s);
  std::printf("\nToo-frequent checkpoints waste bandwidth writing state; too-rare ones redo\n"
              "lost iterations after every failure — the balance Section 5.1 describes.\n");
  return 0;
}
