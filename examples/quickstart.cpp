// Quickstart: the three things craysim does, in ~80 lines.
//
//  1. Synthesize the I/O trace of a supercomputing application (venus, the
//     paper's staging-heavy climate model) and characterize it.
//  2. Serialize the trace in the paper's compressed ASCII format and read it
//     back.
//  3. Run two venus instances on one simulated Cray Y-MP CPU with an
//     SSD-class cache, read-ahead and write-behind, and report utilization.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>
#include <memory>

#include "analysis/patterns.hpp"
#include "sim/simulator.hpp"
#include "trace/stats.hpp"
#include "trace/stream.hpp"
#include "workload/profiles.hpp"
#include "workload/trace_gen.hpp"

int main() {
  using namespace craysim;

  // --- 1. Synthesize and characterize a venus trace. ------------------------
  const workload::AppProfile venus = workload::make_profile(workload::AppId::kVenus);
  const trace::Trace t = workload::synthesize_trace(venus);
  const trace::TraceStats stats = trace::compute_stats(t);
  std::printf("%s", trace::summarize(stats, venus.name).c_str());

  const analysis::PatternReport patterns = analysis::analyze_patterns(t);
  std::printf("\naccess patterns:\n%s", patterns.render().c_str());

  // --- 2. Round-trip through the paper's trace format. ----------------------
  const std::string wire = trace::serialize_trace(t, "quickstart venus trace");
  const trace::Trace reparsed = trace::parse_trace(wire);
  std::printf("\ntrace format: %zu records -> %zu bytes on the wire (%.1f bytes/record), "
              "round-trip %s\n",
              t.size(), wire.size(), static_cast<double>(wire.size()) / static_cast<double>(t.size()),
              reparsed == t ? "exact" : "MISMATCH");

  // --- 3. Two venus instances on one CPU with a 256 MB SSD cache. -----------
  sim::SimParams params = sim::SimParams::paper_ssd(Bytes{256} * kMB);
  sim::Simulator simulator(params);
  simulator.add_app(workload::make_profile(workload::AppId::kVenus, /*seed=*/1));
  simulator.add_app(workload::make_profile(workload::AppId::kVenus, /*seed=*/2));
  const sim::SimResult result = simulator.run();
  std::printf("\n2 x venus on a 256 MB SSD cache:\n%s", result.summary().c_str());
  std::printf("\nWith a large SSD, one or two staging-heavy applications are enough to keep a\n"
              "Cray Y-MP CPU almost fully busy -- the paper's headline result.\n");
  return 0;
}
