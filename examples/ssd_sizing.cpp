// ssd_sizing: find the smallest SSD share that keeps a CPU above a target
// utilization for each traced application — the capacity-planning question
// behind Section 6.3/6.4 ("provide as much SSD storage as possible").
//
// Usage: ssd_sizing [--target 99] [--copies 1]
#include <cstdio>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "util/table.hpp"
#include "util/text.hpp"
#include "workload/profiles.hpp"

namespace {

double utilization_at(craysim::workload::AppId app, craysim::Bytes cache_mb, int copies) {
  using namespace craysim;
  sim::Simulator simulator(sim::SimParams::paper_ssd(cache_mb * kMB));
  for (int c = 0; c < copies; ++c) {
    simulator.add_app(workload::make_profile(app, 11 + static_cast<std::uint64_t>(c) * 7));
  }
  return simulator.run().cpu_utilization();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace craysim;
  double target_pct = 99.0;
  int copies = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--target" && i + 1 < argc) {
      const auto v = parse_double(argv[++i]);
      if (!v || *v <= 0 || *v >= 100) {
        std::fprintf(stderr, "bad --target\n");
        return 2;
      }
      target_pct = *v;
    } else if (arg == "--copies" && i + 1 < argc) {
      const auto v = parse_int(argv[++i]);
      if (!v || *v < 1 || *v > 8) {
        std::fprintf(stderr, "bad --copies\n");
        return 2;
      }
      copies = static_cast<int>(*v);
    } else {
      std::fprintf(stderr, "usage: ssd_sizing [--target 99] [--copies 1]\n");
      return 2;
    }
  }

  std::printf("smallest SSD share reaching %.1f%% CPU utilization (%d cop%s of each app)\n\n",
              target_pct, copies, copies == 1 ? "y" : "ies");
  const std::vector<Bytes> ladder = {4, 8, 16, 32, 64, 128, 256, 512, 1024};
  TextTable table({"app", "required SSD MB", "utilization there %", "util at 4 MB %"});
  for (const auto app : workload::all_apps()) {
    Bytes found = -1;
    double found_util = 0;
    const double floor_util = 100.0 * utilization_at(app, 4, copies);
    for (const Bytes mb : ladder) {
      const double util = 100.0 * utilization_at(app, mb, copies);
      if (util >= target_pct) {
        found = mb;
        found_util = util;
        break;
      }
    }
    table.row().cell(std::string(workload::app_name(app)));
    if (found > 0) {
      table.integer(found).num(found_util, 2).num(floor_util, 1);
    } else {
      table.cell("> 1024").cell("-").num(floor_util, 1);
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nThe NASA Ames Y-MP gave each of its 8 CPUs a 256 MB share of the 2 GB SSD;\n"
              "the paper found that share sufficient for every traced program but one.\n");
  return 0;
}
