// Streaming replay of traces larger than memory.
//
//   stream_replay synthesize <path> <megabytes>
//       Writes a framed binary trace of roughly <megabytes> MB by tiling a
//       synthesized venus trace forward in time, one record at a time —
//       memory stays bounded no matter how large the output.
//
//   stream_replay replay <path>
//       Replays the trace through the simulator by pulling records on demand
//       (bounded-buffer binary stream, no mmap), so peak RSS is independent
//       of trace size. Run under `/usr/bin/time -v` to verify.
//
// Build & run:  cmake --build build && ./build/examples/stream_replay ...
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "sim/process.hpp"
#include "sim/simulator.hpp"
#include "trace/binary_stream.hpp"
#include "trace/stream.hpp"
#include "workload/profiles.hpp"
#include "workload/trace_gen.hpp"

namespace {

using namespace craysim;

int synthesize(const std::string& path, long megabytes) {
  const trace::Trace base =
      workload::synthesize_trace(workload::make_profile(workload::AppId::kVenus));
  if (base.empty()) {
    std::fprintf(stderr, "synthesized base trace is empty\n");
    return 1;
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot open for writing: %s\n", path.c_str());
    return 1;
  }
  trace::BinaryTraceWriter writer(out);
  const auto target = static_cast<std::uint64_t>(megabytes) * 1024 * 1024;
  // Each tile replays the base trace shifted past the previous tile's end,
  // keeping start times monotonic as the format requires.
  const Ticks tile_span = base.back().start_time + Ticks(1000);
  Ticks offset(0);
  std::uint64_t tiles = 0;
  while (static_cast<std::uint64_t>(out.tellp()) < target) {
    for (trace::TraceRecord record : base) {
      record.start_time += offset;
      writer.write(record);
    }
    offset += tile_span;
    ++tiles;
  }
  out.flush();
  std::printf("wrote %s: %lld records (%llu tiles), %lld bytes\n", path.c_str(),
              static_cast<long long>(writer.records_written()),
              static_cast<unsigned long long>(tiles), static_cast<long long>(out.tellp()));
  return out ? 0 : 1;
}

int replay(const std::string& path) {
  // prefer_mmap=false: stream through a bounded buffer so resident set stays
  // flat even when the trace dwarfs RAM (mapped pages would count toward
  // peak RSS as the parse touches them).
  trace::StreamOptions options;
  options.prefer_mmap = false;
  auto records = trace::open_record_stream(path, options);
  auto source = std::make_unique<sim::StreamingReplaySource>(std::move(records));
  const sim::StreamingReplaySource* probe = source.get();

  sim::Simulator simulator(sim::SimParams::paper_ssd(Bytes{64} * kMB));
  simulator.add_process("replay", std::move(source));
  const sim::SimResult result = simulator.run();

  std::printf("replayed %lld records from %s\n",
              static_cast<long long>(probe->records_consumed()), path.c_str());
  std::printf("%s", result.summary().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 4 && std::strcmp(argv[1], "synthesize") == 0) {
    const long megabytes = std::strtol(argv[3], nullptr, 10);
    if (megabytes <= 0) {
      std::fprintf(stderr, "megabytes must be positive\n");
      return 2;
    }
    return synthesize(argv[2], megabytes);
  }
  if (argc == 3 && std::strcmp(argv[1], "replay") == 0) {
    return replay(argv[2]);
  }
  std::fprintf(stderr,
               "usage:\n"
               "  %s synthesize <path> <megabytes>\n"
               "  %s replay <path>\n",
               argv[0], argv[0]);
  return 2;
}
