// observe: the telemetry layer end to end. Runs the venus workload through
// the whole pipeline — synthesize, trace over a lossy channel, reconstruct,
// parse under an error budget, simulate — with every layer publishing into
// one MetricsRegistry, the simulation recording sim-time spans (plus
// periodic counter samples) and a latency-attribution ledger whose blame
// report — with its conservation self-check — answers where the replay's
// I/O time went, and a wall-clock phase profiler timing the
// stages. Then drives a small multi-point cache-size sweep through the
// experiment runner with a per-point SpanRecorderPool, merging all points
// into one Perfetto timeline and exporting the counter samples as a JSONL
// time series. Writes all four artifacts and self-validates before exiting.
//
//   observe [--metrics <path>] [--perfetto <path>]
//           [--sweep-perfetto <path>] [--timeseries <path>]
//           [--listen <host:port>]
//
// With --listen, the cache-size sweep runs with the live telemetry plane on
// and the example scrapes its own /healthz, /metrics, and /status endpoints
// afterward, validating the live plane end to end (pass "--listen
// 127.0.0.1:0" for an ephemeral port).
//
// Exits nonzero if any span recording fails its consistency check or an
// artifact cannot be written — CI runs this as the telemetry smoke test.
#include <csignal>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/attribution.hpp"
#include "faults/fault.hpp"
#include "obs/attr.hpp"
#include "obs/http.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "obs/span.hpp"
#include "obs/span_pool.hpp"
#include "runner/runner.hpp"
#include "sim/process.hpp"
#include "sim/simulator.hpp"
#include "trace/stream.hpp"
#include "tracer/pipeline.hpp"
#include "util/error.hpp"
#include "workload/profiles.hpp"
#include "workload/trace_gen.hpp"

int main(int argc, char** argv) {
  using namespace craysim;

  // Flush stdio and re-raise on SIGINT/SIGTERM so an interrupted run's
  // partial console output survives; the artifact saves themselves are
  // crash-atomic (util::write_file_atomic), so no artifact cleanup needed.
  static const auto on_signal = +[](int sig) {
    std::fflush(nullptr);
    std::signal(sig, SIG_DFL);
    std::raise(sig);
  };
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  std::string metrics_path = "observe_metrics.jsonl";
  std::string perfetto_path = "observe_trace.json";
  std::string sweep_perfetto_path = "observe_sweep.json";
  std::string timeseries_path = "observe_timeseries.jsonl";
  std::string listen_addr;
  for (int i = 1; i < argc; i += 2) {
    const std::string_view flag = argv[i];
    if (flag == "--metrics" && i + 1 < argc) {
      metrics_path = argv[i + 1];
    } else if (flag == "--perfetto" && i + 1 < argc) {
      perfetto_path = argv[i + 1];
    } else if (flag == "--sweep-perfetto" && i + 1 < argc) {
      sweep_perfetto_path = argv[i + 1];
    } else if (flag == "--timeseries" && i + 1 < argc) {
      timeseries_path = argv[i + 1];
    } else if (flag == "--listen" && i + 1 < argc) {
      listen_addr = argv[i + 1];
    } else {
      std::fprintf(stderr,
                   "usage: observe [--metrics <path>] [--perfetto <path>]\n"
                   "               [--sweep-perfetto <path>] [--timeseries <path>]\n"
                   "               [--listen <host:port>]\n");
      return 2;
    }
  }

  obs::MetricsRegistry registry;
  obs::PhaseProfiler phases;
  obs::SpanRecorder spans;

  // 1. Synthesize the venus logical trace (the paper's heaviest writer).
  std::printf("1. synthesizing the venus trace...\n");
  trace::Trace original;
  {
    const auto scope = phases.scope("synthesize");
    original = workload::synthesize_trace(workload::make_profile(workload::AppId::kVenus));
  }
  std::printf("   %zu records\n", original.size());

  // 2. Collect it through the instrumented library over a lossy channel,
  //    then reconstruct; both ends publish their tallies.
  std::printf("\n2. collecting over a lossy procstat channel...\n");
  tracer::ReconstructionResult recovered;
  {
    const auto scope = phases.scope("collect");
    faults::FaultPlan channel;
    channel.seed = 0x0B5E;
    channel.packet.drop_rate = 0.01;
    channel.packet.duplicate_rate = 0.01;
    channel.packet.reorder_rate = 0.01;
    tracer::TracerOptions options;
    options.entries_per_packet = 64;
    const auto collector = tracer::instrument_trace(original, channel, options);
    recovered = tracer::reconstruct_lossy(collector.log(), collector.sequences_issued());
    collector.stats().publish_metrics(registry);
  }
  recovered.report.publish_metrics(registry);
  std::printf("   %s\n", recovered.report.summary().c_str());

  // 3. Serialize, scuff a few bytes, and parse back under an error budget.
  std::printf("\n3. parsing the wire format under an error budget...\n");
  trace::RecoveredTrace parsed;
  {
    const auto scope = phases.scope("parse");
    std::string wire = trace::serialize_trace(recovered.trace, "observe demo");
    for (std::size_t i = 0; i < 8; ++i) {
      wire[500 + i * ((wire.size() - 1000) / 8)] = '#';
    }
    parsed = trace::parse_trace_lossy(wire);
  }
  parsed.report.publish_metrics(registry);
  std::printf("   %s\n", parsed.report.summary().c_str());

  // 4. Replay what survived through the simulator with the span recorder on:
  //    every run/blocked interval, I/O op lifetime, disk access, and cache
  //    eviction lands in the recording at its simulated timestamp, and the
  //    counter sampler adds occupancy/queue-depth tracks every 100 ms of
  //    simulated time.
  std::printf("\n4. simulating the replay with sim-time span tracing...\n");
  sim::SimResult result;
  obs::AttributionLedger ledger;
  {
    const auto scope = phases.scope("simulate");
    sim::SimParams params = sim::SimParams::paper_main_memory(Bytes{16} * kMB);
    params.spans = &spans;
    params.counter_interval = Ticks::from_ms(100);
    params.attribution = &ledger;
    sim::Simulator simulator(params);
    simulator.add_process("venus",
                          std::make_unique<sim::TraceReplaySource>(std::move(parsed.trace)));
    result = simulator.run();
  }
  result.publish_metrics(registry);
  std::printf("%s", result.summary().c_str());

  // 4b. Blame the replay's I/O time: the attribution ledger decomposed every
  //     op's latency into additive components, so the report's percentages
  //     answer "where did the time go" exactly. Self-check the conservation
  //     contract before trusting it: the components sum to the measured I/O
  //     time, and every scope's rows close over the same grand total.
  std::printf("\n4b. attributing the replay's I/O time...\n%s",
              analysis::attribution_report(result.attr, /*top_n=*/5).c_str());
  {
    std::int64_t comp_sum = 0;
    for (const std::int64_t ticks : result.attr.total.comp) comp_sum += ticks;
    std::int64_t file_sum = 0;
    std::int64_t proc_sum = 0;
    for (const auto& entry : result.attr.files) file_sum += entry.total_ticks;
    for (const auto& entry : result.attr.procs) proc_sum += entry.total_ticks;
    const std::int64_t total = result.attr.total.total_ticks;
    const bool conserved = result.attr.enabled && result.attr.total.ops > 0 &&
                           comp_sum == total && file_sum == total && proc_sum == total;
    std::printf("   conservation: components %s, file rows %s, process rows %s -> %s\n",
                comp_sum == total ? "exact" : "LEAK", file_sum == total ? "exact" : "LEAK",
                proc_sum == total ? "exact" : "LEAK", conserved ? "ok" : "FAILED");
    if (!conserved) return 1;
  }

  // 5. Sweep three cache sizes through the experiment runner, each point
  //    recording into its own slot of a SpanRecorderPool. The merged export
  //    shows all points side by side as labeled Perfetto process groups.
  std::printf("\n5. sweeping cache sizes with a per-point recorder pool...\n");
  const std::vector<Bytes> cache_mbs = {4, 16, 64};
  obs::SpanRecorderPool sweep_pool(cache_mbs.size(), /*enabled=*/true);
  runner::RunnerOptions sweep_options = runner::RunnerOptions::from_env();
  sweep_options.collect_telemetry = true;
  if (!listen_addr.empty()) {
    sweep_options.listen_addr = listen_addr;
    sweep_options.metrics = &registry;
  }
  runner::ExperimentRunner sweep_runner(sweep_options);
  if (const obs::TelemetryServer* server = sweep_runner.telemetry_server()) {
    std::printf("   live telemetry plane on http://%s (/metrics /status /healthz)\n",
                server->address().c_str());
  }
  std::vector<double> sweep_utils;
  {
    const auto scope = phases.scope("sweep");
    const std::vector<std::size_t> indices = {0, 1, 2};
    sweep_utils = sweep_runner.run(indices, [&](std::size_t i) {
      sim::SimParams params = sim::SimParams::paper_main_memory(cache_mbs[i] * kMB);
      params.spans = sweep_pool.claim(i, "venus, " + std::to_string(cache_mbs[i]) + " MB cache");
      params.counter_interval = Ticks::from_ms(100);
      sim::Simulator simulator(params);
      simulator.add_app(workload::make_profile(workload::AppId::kVenus, 11));
      return simulator.run().cpu_utilization();
    });
  }
  sweep_runner.publish_metrics(registry);
  for (std::size_t i = 0; i < cache_mbs.size(); ++i) {
    std::printf("   %s: %.1f%% utilization, %zu span events\n", sweep_pool.label(i).c_str(),
                100.0 * sweep_utils[i], sweep_pool.recorder(i)->size());
  }

  // 5b. Self-scrape the live plane: all three endpoints must answer, the
  //     exposition must carry the runner's families, and /status must report
  //     the sweep fully settled.
  if (const obs::TelemetryServer* server = sweep_runner.telemetry_server()) {
    std::printf("\n5b. scraping the live telemetry plane...\n");
    try {
      const auto health = obs::http_get("127.0.0.1", server->port(), "/healthz");
      const auto metrics = obs::http_get("127.0.0.1", server->port(), "/metrics");
      const auto status = obs::http_get("127.0.0.1", server->port(), "/status");
      const bool live_ok = health.status == 200 && health.body == "ok\n" &&
                           metrics.status == 200 &&
                           metrics.body.find("# TYPE runner_points counter") !=
                               std::string::npos &&
                           status.status == 200 &&
                           status.body.find("\"total\":3,\"settled\":3") != std::string::npos;
      std::printf("   /healthz %d, /metrics %d (%zu bytes), /status %d (%zu bytes): %s\n",
                  health.status, metrics.status, metrics.body.size(), status.status,
                  status.body.size(), live_ok ? "ok" : "FAILED");
      if (!live_ok) return 1;
    } catch (const Error& e) {
      std::fprintf(stderr, "live plane scrape FAILED: %s\n", e.what());
      return 1;
    }
  }

  // 6. Validate and write all artifacts.
  std::printf("\n6. writing telemetry artifacts...\n");
  const std::string problem = obs::check_consistency(spans);
  if (!problem.empty()) {
    std::fprintf(stderr, "span consistency check FAILED: %s\n", problem.c_str());
    return 1;
  }
  const std::string sweep_problem = obs::check_consistency(sweep_pool);
  if (!sweep_problem.empty()) {
    std::fprintf(stderr, "sweep span consistency check FAILED: %s\n", sweep_problem.c_str());
    return 1;
  }
  phases.publish_metrics(registry);
  try {
    spans.save(perfetto_path);
    registry.save_jsonl(metrics_path);
    sweep_pool.save_merged(sweep_perfetto_path);
    sweep_pool.save_counter_series(timeseries_path);
  } catch (const Error& e) {
    std::fprintf(stderr, "write failed: %s\n", e.what());
    return 1;
  }
  std::printf("   %zu span events -> %s (open in ui.perfetto.dev)\n", spans.size(),
              perfetto_path.c_str());
  std::printf("   %zu metrics     -> %s\n", registry.size(), metrics_path.c_str());
  std::printf("   %zu-point merged sweep -> %s\n", sweep_pool.size(),
              sweep_perfetto_path.c_str());
  std::printf("   counter time series   -> %s\n", timeseries_path.c_str());
  std::printf("\nwall-clock phases:\n%s", phases.report().c_str());

  bool sweep_recorded = true;
  for (std::size_t i = 0; i < sweep_pool.size(); ++i) {
    sweep_recorded &= sweep_pool.recorder(i) != nullptr && !sweep_pool.recorder(i)->empty();
  }
  const bool ok = !spans.empty() && registry.size() > 30 && result.total_wall > Ticks::zero() &&
                  sweep_recorded;
  std::printf("\nobserve %s: spans consistent, metrics published, artifacts written\n",
              ok ? "PASSED" : "FAILED");
  return ok ? 0 : 1;
}
