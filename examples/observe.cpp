// observe: the telemetry layer end to end. Runs the venus workload through
// the whole pipeline — synthesize, trace over a lossy channel, reconstruct,
// parse under an error budget, simulate — with every layer publishing into
// one MetricsRegistry, the simulation recording sim-time spans, and a
// wall-clock phase profiler timing the stages. Writes the metrics snapshot
// (JSONL) and the span recording (Chrome trace-event JSON, loadable at
// ui.perfetto.dev), and self-validates both before exiting.
//
//   observe [--metrics <path>] [--perfetto <path>]
//
// Exits nonzero if the span recording fails its consistency check or either
// artifact cannot be written — CI runs this as the telemetry smoke test.
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>

#include "faults/fault.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "obs/span.hpp"
#include "sim/process.hpp"
#include "sim/simulator.hpp"
#include "trace/stream.hpp"
#include "tracer/pipeline.hpp"
#include "util/error.hpp"
#include "workload/profiles.hpp"
#include "workload/trace_gen.hpp"

int main(int argc, char** argv) {
  using namespace craysim;

  std::string metrics_path = "observe_metrics.jsonl";
  std::string perfetto_path = "observe_trace.json";
  for (int i = 1; i < argc; i += 2) {
    const std::string_view flag = argv[i];
    if (flag == "--metrics" && i + 1 < argc) {
      metrics_path = argv[i + 1];
    } else if (flag == "--perfetto" && i + 1 < argc) {
      perfetto_path = argv[i + 1];
    } else {
      std::fprintf(stderr, "usage: observe [--metrics <path>] [--perfetto <path>]\n");
      return 2;
    }
  }

  obs::MetricsRegistry registry;
  obs::PhaseProfiler phases;
  obs::SpanRecorder spans;

  // 1. Synthesize the venus logical trace (the paper's heaviest writer).
  std::printf("1. synthesizing the venus trace...\n");
  trace::Trace original;
  {
    const auto scope = phases.scope("synthesize");
    original = workload::synthesize_trace(workload::make_profile(workload::AppId::kVenus));
  }
  std::printf("   %zu records\n", original.size());

  // 2. Collect it through the instrumented library over a lossy channel,
  //    then reconstruct; both ends publish their tallies.
  std::printf("\n2. collecting over a lossy procstat channel...\n");
  tracer::ReconstructionResult recovered;
  {
    const auto scope = phases.scope("collect");
    faults::FaultPlan channel;
    channel.seed = 0x0B5E;
    channel.packet.drop_rate = 0.01;
    channel.packet.duplicate_rate = 0.01;
    channel.packet.reorder_rate = 0.01;
    tracer::TracerOptions options;
    options.entries_per_packet = 64;
    const auto collector = tracer::instrument_trace(original, channel, options);
    recovered = tracer::reconstruct_lossy(collector.log(), collector.sequences_issued());
    collector.stats().publish_metrics(registry);
  }
  recovered.report.publish_metrics(registry);
  std::printf("   %s\n", recovered.report.summary().c_str());

  // 3. Serialize, scuff a few bytes, and parse back under an error budget.
  std::printf("\n3. parsing the wire format under an error budget...\n");
  trace::RecoveredTrace parsed;
  {
    const auto scope = phases.scope("parse");
    std::string wire = trace::serialize_trace(recovered.trace, "observe demo");
    for (std::size_t i = 0; i < 8; ++i) {
      wire[500 + i * ((wire.size() - 1000) / 8)] = '#';
    }
    parsed = trace::parse_trace_lossy(wire);
  }
  parsed.report.publish_metrics(registry);
  std::printf("   %s\n", parsed.report.summary().c_str());

  // 4. Replay what survived through the simulator with the span recorder on:
  //    every run/blocked interval, I/O op lifetime, disk access, and cache
  //    eviction lands in the recording at its simulated timestamp.
  std::printf("\n4. simulating the replay with sim-time span tracing...\n");
  sim::SimResult result;
  {
    const auto scope = phases.scope("simulate");
    sim::SimParams params = sim::SimParams::paper_main_memory(Bytes{16} * kMB);
    params.spans = &spans;
    sim::Simulator simulator(params);
    simulator.add_process("venus",
                          std::make_unique<sim::TraceReplaySource>(std::move(parsed.trace)));
    result = simulator.run();
  }
  result.publish_metrics(registry);
  std::printf("%s", result.summary().c_str());

  // 5. Validate and write both artifacts.
  std::printf("\n5. writing telemetry artifacts...\n");
  const std::string problem = obs::check_consistency(spans);
  if (!problem.empty()) {
    std::fprintf(stderr, "span consistency check FAILED: %s\n", problem.c_str());
    return 1;
  }
  phases.publish_metrics(registry);
  try {
    spans.save(perfetto_path);
    registry.save_jsonl(metrics_path);
  } catch (const Error& e) {
    std::fprintf(stderr, "write failed: %s\n", e.what());
    return 1;
  }
  std::printf("   %zu span events -> %s (open in ui.perfetto.dev)\n", spans.size(),
              perfetto_path.c_str());
  std::printf("   %zu metrics     -> %s\n", registry.size(), metrics_path.c_str());
  std::printf("\nwall-clock phases:\n%s", phases.report().c_str());

  const bool ok = !spans.empty() && registry.size() > 30 && result.total_wall > Ticks::zero();
  std::printf("\nobserve %s: spans consistent, metrics published, artifacts written\n",
              ok ? "PASSED" : "FAILED");
  return ok ? 0 : 1;
}
