// trace_analyzer: characterize an I/O trace the way Section 5 of the paper
// does — Table 1/2 statistics, per-file patterns, request-size histogram,
// and the data-rate-over-CPU-time profile.
//
// Usage:
//   trace_analyzer <trace-file>          analyze a trace in the wire format
//   trace_analyzer --app <name> [out]    synthesize an application trace
//                                        (bvi ccm forma gcm les upw venus),
//                                        analyze it, optionally save it
#include <cstdio>
#include <string>

#include "analysis/patterns.hpp"
#include "analysis/series.hpp"
#include "trace/stats.hpp"
#include "trace/stream.hpp"
#include "util/ascii_plot.hpp"
#include "util/error.hpp"
#include "workload/profiles.hpp"
#include "workload/trace_gen.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: trace_analyzer <trace-file>\n"
               "       trace_analyzer --app <bvi|ccm|forma|gcm|les|upw|venus> [save-path]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace craysim;
  if (argc < 2) return usage();

  trace::Trace t;
  std::string name;
  try {
    if (std::string(argv[1]) == "--app") {
      if (argc < 3) return usage();
      const auto app = workload::app_by_name(argv[2]);
      if (!app) {
        std::fprintf(stderr, "unknown application '%s'\n", argv[2]);
        return 2;
      }
      name = argv[2];
      t = workload::synthesize_trace(workload::make_profile(*app));
      if (argc >= 4) {
        trace::save_trace(t, argv[3], "synthesized " + name + " trace (craysim)");
        std::printf("saved %zu records to %s\n\n", t.size(), argv[3]);
      }
    } else {
      name = argv[1];
      t = trace::load_trace(argv[1]);
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  if (t.empty()) {
    std::printf("trace is empty\n");
    return 0;
  }

  const trace::TraceStats stats = trace::compute_stats(t);
  std::printf("%s", trace::summarize(stats, name).c_str());

  std::printf("\nrequest-size histogram (bytes):\n%s", stats.size_histogram.render().c_str());

  const analysis::PatternReport patterns = analysis::analyze_patterns(t);
  std::printf("\naccess patterns:\n%s", patterns.render().c_str());

  const BinnedSeries series = analysis::cpu_time_rate_series(t);
  auto rates = series.rates();
  for (auto& r : rates) r /= 1e6;
  PlotOptions options;
  options.y_label = "MB per CPU second";
  options.x_label = "process CPU seconds";
  options.x_scale = series.bin_width().seconds();
  options.height = 14;
  std::printf("\ndata rate over process CPU time:\n%s", ascii_plot(rates, options).c_str());
  return 0;
}
