// mss_staging: stage the traced applications' data sets out of the Section
// 2.2 Mass Storage System and see why nearline tape sits where it does in
// the hierarchy (SSD ~us, disk ~ms, robot tape ~minutes, vault ~tens of
// minutes).
#include <cstdio>

#include "mss/mss.hpp"
#include "util/table.hpp"
#include "workload/profiles.hpp"

int main() {
  using namespace craysim;
  mss::MassStorageSystem mss;

  std::printf("archiving each application's data set to 200 MB cartridges...\n\n");
  struct Entry {
    workload::AppId app;
    mss::FileId file;
  };
  std::vector<Entry> entries;
  for (const auto app : workload::all_apps()) {
    const auto profile = workload::make_profile(app);
    Bytes total = profile.data_set_size();
    // One archive object per app (capped at a cartridge for the big sets).
    const Bytes size = std::min<Bytes>(total, Bytes{190} * kMB);
    const auto file = mss.archive(std::string(workload::app_name(app)) + "-dataset", size);
    entries.push_back({app, file});
  }
  std::printf("library now holds %zu cartridges\n\n", mss.cartridge_count());

  TextTable table({"data set", "size MB", "cartridge", "cold stage s", "staged-by s (serial)"});
  Ticks clock;
  for (const auto& e : entries) {
    const auto& info = mss.info(e.file);
    const Ticks cold = mss.cold_stage_latency(e.file);
    clock = mss.stage(clock, e.file);
    table.row()
        .cell(info.name)
        .integer(info.size / kMB)
        .integer(info.tape)
        .num(cold.seconds(), 1)
        .num(clock.seconds(), 1);
  }
  std::printf("%s", table.render().c_str());
  const auto& stats = mss.stats();
  std::printf("\n%lld robot mounts, %lld reuse hits, %s staged, drive queue wait %.1f s\n",
              static_cast<long long>(stats.robot_mounts),
              static_cast<long long>(stats.already_loaded),
              format_bytes(stats.bytes_staged).c_str(), stats.drive_queue_wait.seconds());

  // The offline vault for comparison.
  const auto vault = mss.archive("seismic-archive", Bytes{190} * kMB, /*nearline=*/false);
  std::printf("\noffline vault copy of a 190 MB seismic archive: cold stage %.0f s "
              "(operator fetch dominates)\n",
              mss.cold_stage_latency(vault).seconds());
  std::printf("\nStaging a working set off tape costs minutes — which is why the paper's\n"
              "hierarchy keeps active data on disk and SSD, with tape for capacity.\n");
  return 0;
}
