// tracing_pipeline: walk through the Section 4 collection machinery step by
// step — instrumented library -> batched packets -> procstat -> merge ->
// standard trace format -> physical expansion against the FS substrate.
#include <cstdio>

#include "fs/physical.hpp"
#include "trace/stats.hpp"
#include "trace/stream.hpp"
#include "tracer/pipeline.hpp"
#include "workload/profiles.hpp"
#include "workload/trace_gen.hpp"

int main() {
  using namespace craysim;

  // 1. An application runs and the instrumented library batches its I/Os.
  std::printf("1. running ccm under the instrumented I/O library...\n");
  const auto profile = workload::make_profile(workload::AppId::kCcm);
  const trace::Trace original = workload::synthesize_trace(profile);
  const tracer::TracerOptions options;
  const auto collector = tracer::instrument_trace(original, options);
  const auto& stats = collector.stats();
  std::printf("   %lld I/Os -> %lld packets (%.0f entries/packet), %.1f bytes per I/O on the\n"
              "   procstat pipe (8-word headers amortized), %lld forced flushes\n",
              static_cast<long long>(stats.entries), static_cast<long long>(stats.packets),
              static_cast<double>(stats.entries) / static_cast<double>(stats.packets),
              stats.bytes_per_io(), static_cast<long long>(stats.forced_flushes));
  std::printf("   tracing CPU: %.1f%% of I/O system-call time (paper: < 20%%)\n",
              100.0 * stats.overhead_fraction(options.io_syscall_time));

  // 2. Post-processing merges the per-file batches back into one stream.
  std::printf("\n2. reconstructing the time-ordered stream from the packet log...\n");
  const trace::Trace rebuilt = tracer::reconstruct(collector.log());
  bool exact = rebuilt.size() == original.size();
  for (std::size_t i = 0; exact && i < rebuilt.size(); ++i) {
    exact = rebuilt[i].start_time == original[i].start_time &&
            rebuilt[i].offset == original[i].offset && rebuilt[i].length == original[i].length;
  }
  std::printf("   %zu records, reconstruction %s\n", rebuilt.size(),
              exact ? "EXACT" : "MISMATCH");

  // 3. Convert to the standard compressed ASCII format of the appendix.
  std::printf("\n3. converting to the standard trace format...\n");
  const std::string wire = trace::serialize_trace(rebuilt, "ccm via tracing pipeline");
  std::printf("   %zu bytes (%.1f bytes/record after relative-field compression)\n",
              wire.size(), static_cast<double>(wire.size()) / static_cast<double>(rebuilt.size()));

  // 4. Expand to physical records against the FS substrate (the half of the
  //    format the original study never got to populate on the Cray).
  std::printf("\n4. expanding logical records to physical disk I/Os...\n");
  fs::FileSystem filesystem(fs::DiskLayout::nasa_ames_default());
  const auto expansion = fs::expand_to_physical(rebuilt, filesystem);
  std::printf("   %lld physical records (%s) + %lld metadata records over %zu disks\n",
              static_cast<long long>(expansion.physical_records),
              format_bytes(expansion.physical_bytes).c_str(),
              static_cast<long long>(expansion.metadata_records),
              filesystem.layout().disk_count());
  const std::string full_wire = trace::serialize_trace(expansion.combined);
  std::printf("   combined logical+physical trace: %zu records, %zu bytes on the wire\n",
              expansion.combined.size(), full_wire.size());
  const auto parsed = trace::parse_trace(full_wire);
  std::printf("   wire round-trip of combined trace: %s\n",
              parsed == expansion.combined ? "EXACT" : "MISMATCH");
  return (exact && parsed == expansion.combined) ? 0 : 1;
}
