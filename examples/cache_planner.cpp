// cache_planner: size a buffer cache for a workload mix, the question
// Section 6.4 of the paper answers for NASA's configuration.
//
// Pick a mix of the seven traced applications and a range of cache sizes;
// the planner runs each configuration through the simulator and reports
// idle time, utilization, and disk traffic so you can find the knee.
//
// Usage:
//   cache_planner <app> [app...] [--sizes 8,32,128,256] [--block 4096]
//                 [--mm] [--no-readahead] [--no-writebehind]
//
//   --mm             main-memory cache timing (default: SSD timing)
//   --sizes LIST     cache sizes in MB (default 4,8,16,32,64,128,256)
//   --block BYTES    cache block size (default 4096)
#include <cstdio>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "util/table.hpp"
#include "util/text.hpp"
#include "workload/profiles.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: cache_planner <app> [app...] [--sizes 8,32,128] [--block 4096] [--mm]\n"
               "                     [--no-readahead] [--no-writebehind]\n"
               "apps: bvi ccm forma gcm les upw venus\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace craysim;
  std::vector<workload::AppId> apps;
  std::vector<Bytes> sizes_mb = {4, 8, 16, 32, 64, 128, 256};
  Bytes block = 4 * kKiB;
  bool main_memory = false;
  bool read_ahead = true;
  bool write_behind = true;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--mm") {
      main_memory = true;
    } else if (arg == "--no-readahead") {
      read_ahead = false;
    } else if (arg == "--no-writebehind") {
      write_behind = false;
    } else if (arg == "--sizes" && i + 1 < argc) {
      sizes_mb.clear();
      for (const auto token : split(argv[++i], ',')) {
        const auto v = parse_int(token);
        if (!v || *v <= 0) return usage();
        sizes_mb.push_back(*v);
      }
    } else if (arg == "--block" && i + 1 < argc) {
      const auto v = parse_size(argv[++i]);
      if (!v || *v <= 0) return usage();
      block = *v;
    } else if (const auto app = workload::app_by_name(arg)) {
      apps.push_back(*app);
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
      return usage();
    }
  }
  if (apps.empty()) return usage();

  std::string mix;
  for (const auto app : apps) {
    if (!mix.empty()) mix += " + ";
    mix += workload::app_name(app);
  }
  std::printf("workload mix: %s | %s cache | block %lld B | RA %s | WB %s\n\n", mix.c_str(),
              main_memory ? "main-memory" : "SSD", static_cast<long long>(block),
              read_ahead ? "on" : "off", write_behind ? "on" : "off");

  TextTable table({"cache MB", "wall s", "idle s", "util %", "disk read MB", "disk write MB",
                   "read hit %", "space waits"});
  for (const Bytes mb : sizes_mb) {
    sim::SimParams params = main_memory ? sim::SimParams::paper_main_memory(mb * kMB)
                                        : sim::SimParams::paper_ssd(mb * kMB);
    params.cache.block_size = block;
    params.cache.read_ahead = read_ahead;
    params.cache.write_behind = write_behind;
    sim::Simulator simulator(params);
    std::uint64_t seed = 11;
    for (const auto app : apps) simulator.add_app(workload::make_profile(app, seed += 7));
    const auto result = simulator.run();
    table.row()
        .integer(mb)
        .num(result.total_wall.seconds(), 1)
        .num(result.idle_time().seconds(), 1)
        .num(100.0 * result.cpu_utilization(), 1)
        .num(static_cast<double>(result.disk.bytes_read) / 1e6, 0)
        .num(static_cast<double>(result.disk.bytes_written) / 1e6, 0)
        .num(100.0 * result.cache.read_hit_fraction(), 1)
        .integer(result.cache.space_waits);
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nRule of thumb from the paper: provide as much SSD as possible and keep the\n"
              "main-memory cache small; a per-CPU SSD share that holds the active data sets\n"
              "drives idle time to ~zero (Section 6.4).\n");
  return 0;
}
