// crash_drill: kill a journaled sweep mid-flight and prove the resume
// guarantee end to end (docs/RESILIENCE.md). The drill:
//
//   1. runs a 12-point cache sweep to completion in-process, journaled, as
//      the reference (results + final journal bytes);
//   2. forks and execs itself ("--child") to run the same sweep against a
//      fresh journal, waits until at least two points have settled durably,
//      then SIGKILLs the child — the harshest possible interruption;
//   3. resumes the half-finished journal in-process and asserts the resumed
//      results AND the converged journal file are byte-identical to the
//      uninterrupted reference.
//
//   crash_drill [--journal <path>]
//
// Exits 0 and prints PASSED only if the byte-identity holds; CI runs this
// as the checkpoint/resume smoke test.
#include <cstdio>

#ifdef _WIN32
int main() {
  std::printf("crash_drill: POSIX-only (fork/exec/SIGKILL); skipping\n");
  return 0;
}
#else

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "runner/runner.hpp"
#include "sim/metrics.hpp"
#include "sim/simulator.hpp"
#include "util/digest.hpp"
#include "workload/profiles.hpp"

namespace {

using namespace craysim;

constexpr std::size_t kPoints = 12;

/// A small deterministic workload so each sweep point simulates in
/// milliseconds; the pad below stretches the point past the kill window.
workload::AppProfile drill_app() {
  workload::AppProfile p;
  p.name = "drill";
  p.description = "crash-drill workload";
  p.cpu_time = Ticks::from_seconds(2.0);
  p.cycles = 8;
  p.files.push_back({"input", 4 * kMB});
  p.files.push_back({"output", 4 * kMB});
  workload::EdgeBurst startup;
  startup.files = {0};
  startup.write = false;
  startup.request_size = 64 * kKiB;
  startup.requests = 16;
  p.startup.push_back(startup);
  workload::CycleBurst cycle;
  cycle.files = {1};
  cycle.write = true;
  cycle.request_size = 32 * kKiB;
  cycle.requests = 8;
  p.cycle.push_back(cycle);
  return p;
}

sim::SimResult run_point(std::size_t i) {
  const Bytes cache_mb = 4 + 2 * static_cast<Bytes>(i % 6);
  sim::SimParams params = sim::SimParams::paper_main_memory(cache_mb * kMB);
  sim::Simulator simulator(params);
  simulator.add_app(drill_app());
  sim::SimResult result = simulator.run();
  // Widen the kill window: without this pad the whole sweep settles in a few
  // milliseconds and the parent cannot reliably interrupt it mid-flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  return result;
}

/// Lossless SimResult journal codec, same contract as the sweep benches use.
struct DrillCodec {
  [[nodiscard]] std::string encode(const sim::SimResult& r) const {
    return sim::serialize_sim_result(r);
  }
  [[nodiscard]] sim::SimResult decode(std::string_view text) const {
    return sim::parse_sim_result(text);
  }
  [[nodiscard]] std::uint64_t digest(std::size_t point) const { return 0xD217 + point; }
};

struct SweepOutput {
  std::vector<std::string> encoded;  ///< one lossless payload per point
  std::size_t restored = 0;          ///< points skipped thanks to the journal
};

/// Runs (or resumes) the drill sweep against `journal`.
SweepOutput run_sweep(const std::string& journal) {
  runner::RunnerOptions options;
  options.threads = 2;
  options.journal_path = journal;
  runner::ExperimentRunner pool(options);
  std::vector<std::size_t> points(kPoints);
  for (std::size_t i = 0; i < kPoints; ++i) points[i] = i;
  const DrillCodec codec;
  const auto settled = pool.run_settled(points, run_point, codec);
  SweepOutput out;
  for (const auto& result : settled) {
    if (!result.ok()) throw Error("drill point failed unexpectedly");
    out.encoded.push_back(codec.encode(*result.value));
    out.restored += result.outcome.from_journal ? 1 : 0;
  }
  return out;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Settled records currently visible in the journal (0 when absent). Every
/// flush is an atomic rename, so this always reads a consistent snapshot.
std::size_t journal_records(const std::string& path) {
  const std::string text = slurp(path);
  if (text.empty()) return 0;
  std::size_t lines = 0;
  for (const char c : text) lines += c == '\n' ? 1 : 0;
  return lines > 0 ? lines - 1 : 0;  // minus the header line
}

std::uint64_t digest_outputs(const std::vector<std::string>& encoded) {
  util::Fnv1a digest;
  for (const std::string& payload : encoded) digest.add_text(payload);
  return digest.value();
}

}  // namespace

int main(int argc, char** argv) {
  std::string journal = "crash_drill.journal";
  bool child = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view flag = argv[i];
    if (flag == "--journal" && i + 1 < argc) {
      journal = argv[++i];
    } else if (flag == "--child") {
      child = true;
    } else {
      std::fprintf(stderr, "usage: crash_drill [--journal <path>]\n");
      return 2;
    }
  }

  if (child) {
    // The doomed run: sweep into the journal until the parent kills us.
    (void)run_sweep(journal);
    return 0;
  }

  const std::string reference_journal = journal + ".ref";
  std::remove(journal.c_str());
  std::remove(reference_journal.c_str());

  std::printf("1. reference: running the %zu-point sweep uninterrupted...\n", kPoints);
  const SweepOutput reference = run_sweep(reference_journal);
  const std::string reference_bytes = slurp(reference_journal);
  std::printf("   digest 0x%016llx, journal %zu bytes\n",
              static_cast<unsigned long long>(digest_outputs(reference.encoded)),
              reference_bytes.size());

  std::printf("2. drill: spawning the same sweep, then SIGKILL mid-flight...\n");
  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("fork");
    return 1;
  }
  if (pid == 0) {
    const char* self = "/proc/self/exe";
    if (access(self, X_OK) != 0) self = argv[0];
    execl(self, argv[0], "--child", "--journal", journal.c_str(),
          static_cast<char*>(nullptr));
    std::perror("execl");
    _exit(127);
  }

  // Wait for at least two durably settled points, then kill without mercy.
  const auto poll_start = std::chrono::steady_clock::now();
  std::size_t seen = 0;
  while (true) {
    seen = journal_records(journal);
    if (seen >= 2) break;
    if (std::chrono::steady_clock::now() - poll_start > std::chrono::seconds(60)) {
      std::fprintf(stderr, "child made no journal progress within 60 s\n");
      kill(pid, SIGKILL);
      waitpid(pid, nullptr, 0);
      return 1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  kill(pid, SIGKILL);
  int status = 0;
  waitpid(pid, &status, 0);
  if (!WIFSIGNALED(status) || WTERMSIG(status) != SIGKILL) {
    std::fprintf(stderr, "child was not killed as planned (status %d)\n", status);
    return 1;
  }
  std::printf("   killed the child with %zu of %zu points settled\n", seen, kPoints);
  if (seen >= kPoints) {
    std::fprintf(stderr, "child finished before the kill; drill proves nothing\n");
    return 1;
  }

  std::printf("3. resume: finishing the half-journaled sweep in-process...\n");
  const SweepOutput resumed = run_sweep(journal);
  std::printf("   %zu points restored from the journal, %zu re-executed\n", resumed.restored,
              kPoints - resumed.restored);

  const bool results_match = resumed.encoded == reference.encoded;
  const bool journal_match = slurp(journal) == reference_bytes;
  const bool restored_some = resumed.restored >= 2 && resumed.restored < kPoints;
  std::printf("   results byte-identical: %s\n", results_match ? "yes" : "NO");
  std::printf("   journal byte-identical: %s\n", journal_match ? "yes" : "NO");

  std::remove(journal.c_str());
  std::remove(reference_journal.c_str());
  const bool ok = results_match && journal_match && restored_some;
  std::printf("\ncrash_drill %s: resumed digest 0x%016llx\n", ok ? "PASSED" : "FAILED",
              static_cast<unsigned long long>(digest_outputs(resumed.encoded)));
  return ok ? 0 : 1;
}

#endif  // _WIN32
