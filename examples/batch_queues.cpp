// batch_queues: simulate a UNICOS-style batch day (Section 2.2) — memory-
// class queues over contiguous physical memory on an 8-CPU machine — and
// report per-job turnaround.
//
// Usage:
//   batch_queues [jobspec ...]
// where each jobspec is name:memoryMB:cpuSeconds[:submitSeconds]
// With no arguments, runs a representative NASA-style day.
#include <cstdio>
#include <string>
#include <vector>

#include "batch/batch.hpp"
#include "util/error.hpp"
#include "util/table.hpp"
#include "util/text.hpp"

namespace {

using namespace craysim;

std::vector<batch::QueueConfig> default_queues() {
  return {
      {"express", Bytes{32} * kMB, Ticks::from_seconds(600), Bytes{128} * kMB},
      {"small", Bytes{128} * kMB, Ticks::from_seconds(3600), Bytes{384} * kMB},
      {"large", Bytes{640} * kMB, Ticks::from_seconds(14400), Bytes{640} * kMB},
  };
}

std::vector<batch::JobSpec> default_day() {
  std::vector<batch::JobSpec> jobs;
  auto add = [&](const std::string& name, Bytes mb, double cpu_s, double submit_s) {
    batch::JobSpec j;
    j.name = name;
    j.memory = mb * kMB;
    j.cpu_time = Ticks::from_seconds(cpu_s);
    j.submit_time = Ticks::from_seconds(submit_s);
    jobs.push_back(j);
  };
  // A plausible morning: climate runs, CFD production jobs, and quick tests.
  add("gcm-climate", 520, 1897, 0);
  add("ccm-climate", 480, 1640, 60);
  add("forma-struct", 240, 1648, 120);
  add("les-eddy", 600, 1168, 180);
  add("venus-staged", 64, 379, 240);   // the small-memory trade
  add("bvi-blade", 96, 1320, 300);
  add("upw-poly", 16, 596, 360);
  for (int i = 0; i < 6; ++i) {
    add("test-" + std::to_string(i), 24, 120, 400 + 30 * i);
  }
  return jobs;
}

std::optional<batch::JobSpec> parse_job(const std::string& text) {
  const auto parts = split(text, ':');
  if (parts.size() < 3 || parts.size() > 4) return std::nullopt;
  const auto mb = parse_int(parts[1]);
  const auto cpu = parse_double(parts[2]);
  const auto submit = parts.size() == 4 ? parse_double(parts[3]) : std::optional<double>(0.0);
  if (!mb || !cpu || !submit || *mb <= 0 || *cpu <= 0 || *submit < 0) return std::nullopt;
  batch::JobSpec j;
  j.name = std::string(parts[0]);
  j.memory = *mb * kMB;
  j.cpu_time = Ticks::from_seconds(*cpu);
  j.submit_time = Ticks::from_seconds(*submit);
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace craysim;
  std::vector<batch::JobSpec> jobs;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) {
      const auto job = parse_job(argv[i]);
      if (!job) {
        std::fprintf(stderr, "bad jobspec '%s' (want name:memoryMB:cpuS[:submitS])\n", argv[i]);
        return 2;
      }
      jobs.push_back(*job);
    }
  } else {
    jobs = default_day();
  }

  batch::BatchSystem system(8, Bytes{1024} * kMB, default_queues());
  try {
    for (const auto& job : jobs) system.submit(job);
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  const auto result = system.run();

  std::printf("8 CPUs, 1 GB contiguous memory; queues: express (<=32 MB, <=10 min), "
              "small (<=128 MB, <=1 h), large (<=640 MB, <=4 h)\n\n");
  TextTable table({"job", "queue", "memory MB", "cpu s", "submit s", "wait s", "turnaround s"});
  for (const auto& job : result.jobs) {
    table.row()
        .cell(job.name)
        .cell(job.queue)
        .integer(job.memory / kMB)
        .num(job.cpu_time.seconds(), 0)
        .num(job.submit_time.seconds(), 0)
        .num(job.wait_time().seconds(), 0)
        .num(job.turnaround().seconds(), 0);
  }
  std::printf("%s\nmakespan: %.0f s\n", table.render().c_str(), result.makespan.seconds());
  std::printf("\nNote how the small-memory jobs clear the system while big-memory jobs queue\n"
              "for contiguous space — the incentive behind venus's staging design (Sec 2.2).\n");
  return 0;
}
